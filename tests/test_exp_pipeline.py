"""Tests for the unified experiment pipeline (spec, registry, runner)."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.exp import (ExperimentSpec, Runner, get_experiment,
                       list_experiments, run_experiment)
from repro.routing.cache import RouteCache

#: A small spec with several independent points — cheap enough for a
#: parallel-vs-serial comparison, rich enough to exercise the merge.
SWEEP_SPEC = ExperimentSpec(
    experiment="throughput",
    n_switches=4,
    routings=("updown",),
    rates=(0.01, 0.02, 0.04, 0.06),
    duration_ns=30_000.0,
    warmup_ns=3_000.0,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        names = {exp.name for exp in list_experiments()}
        assert {"fig7", "fig8", "throughput", "apps", "root-study",
                "ablation-load", "ablation-bufpool",
                "ablation-timing", "vc-study"} <= names

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="fig7"):
            get_experiment("teleport")

    def test_experiments_have_titles_and_options(self):
        for exp in list_experiments():
            assert exp.title
            spec = exp.default_spec()
            assert spec.experiment == exp.name
            assert exp.points(spec), exp.name


class TestSpec:
    def test_round_trip(self):
        spec = ExperimentSpec(
            experiment="fig8", sizes=(16, 1024), iterations=7,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
            params={"note": "x"},
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_replace(self):
        spec = ExperimentSpec(experiment="fig7", sizes=(16,))
        other = spec.replace(iterations=3)
        assert other.iterations == 3 and other.sizes == (16,)
        assert spec.iterations == 100  # original untouched


class TestRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Runner(cache=RouteCache()).run(SWEEP_SPEC, jobs=0)

    def test_accepts_experiment_name(self):
        report = Runner(cache=RouteCache()).run(
            get_experiment("root-study").default_spec().replace(
                n_switches=8))
        assert len(report.result.rows) == 2

    def test_on_point_fires_in_order(self):
        seen = []
        Runner(cache=RouteCache()).run(
            SWEEP_SPEC, on_point=lambda i, v: seen.append(i))
        assert seen == [0, 1, 2, 3]

    def test_observe_collects_metrics(self):
        spec = SWEEP_SPEC.replace(rates=(0.02,), observe=True)
        report = Runner(cache=RouteCache()).run(spec)
        assert len(report.observations) == 1
        snapshot = report.observations[0][0]
        assert snapshot  # nonzero metric totals recorded
        assert any("packet" in name or "bytes" in name
                   for name in snapshot)


class TestParallelDeterminism:
    """Acceptance: --jobs 4 == --jobs 1, byte for byte."""

    def test_persisted_documents_byte_identical(self, tmp_path):
        p1 = tmp_path / "jobs1.json"
        p4 = tmp_path / "jobs4.json"
        Runner(cache=RouteCache()).run(SWEEP_SPEC, jobs=1, save=str(p1))
        Runner(cache=RouteCache()).run(SWEEP_SPEC, jobs=4, save=str(p4))
        assert p1.read_bytes() == p4.read_bytes()

    def test_shared_table_computed_at_most_once(self):
        """4 points, 4 workers, 1 shared route table: exactly one
        miss (the parent warm-up), every point a hit."""
        cache = RouteCache()
        report = Runner(cache=cache).run(SWEEP_SPEC, jobs=4)
        assert report.n_points == 4
        assert cache.misses == 1
        assert cache.hits >= 4

    def test_merged_result_matches_serial(self):
        serial = Runner(cache=RouteCache()).run(SWEEP_SPEC, jobs=1)
        parallel = Runner(cache=RouteCache()).run(SWEEP_SPEC, jobs=4)
        a = [(p.routing, p.accepted, p.mean_latency_ns)
             for p in serial.result.points]
        b = [(p.routing, p.accepted, p.mean_latency_ns)
             for p in parallel.result.points]
        assert a == b


class TestPipelineMatchesDirectMeasurement:
    """The Runner adds caching and orchestration, not different
    numbers: pipeline output equals a bare direct measurement."""

    def test_fig7_identical_to_direct(self):
        from repro.core.builder import build_network
        from repro.harness.fig7 import measure_fig7_point, run_fig7

        via_pipeline = run_fig7(sizes=(16, 1024), iterations=3)
        direct = [measure_fig7_point(s, 3, None, 2001,
                                     build=build_network)
                  for s in (16, 1024)]
        assert [(r.size, r.original_ns, r.modified_ns)
                for r in via_pipeline.rows] == \
            [(r.size, r.original_ns, r.modified_ns) for r in direct]

    def test_run_experiment_convenience(self):
        result = run_experiment(
            ExperimentSpec(experiment="fig8", sizes=(16,), iterations=2),
            cache=RouteCache(),
        )
        assert len(result.rows) == 1
        assert result.rows[0].overhead_ns > 0
