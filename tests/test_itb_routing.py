"""Tests for the ITB router — the paper's core routing contribution."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.cdg import is_deadlock_free
from repro.routing.itb import ItbRouter, first_host_policy, round_robin_policy
from repro.routing.minimal import MinimalRouter
from repro.routing.routes import RouteError
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import fig1_topology, linear_switches, random_irregular
from repro.topology.graph import PortKind, Topology


@pytest.fixture
def fig1_setup():
    topo, roles = fig1_topology()
    orientation = build_orientation(topo, root=roles["sw0"])
    return topo, roles, ItbRouter(topo, orientation)


class TestShowcase:
    """The exact Figure 1 scenario."""

    def test_minimal_route_legalized_with_one_itb(self, fig1_setup):
        topo, roles, router = fig1_setup
        route = router.itb_route(roles["host_on_sw4"], roles["host_on_sw1"])
        assert route.n_itbs == 1
        # The in-transit host sits on switch 6, where the down->up
        # transition occurs.
        assert topo.switch_of(route.itb_hosts[0]) == roles["sw6"]
        # Segment switch paths: 4->6 then 6->1.
        assert list(route.segments[0].switch_path) == [roles["sw4"], roles["sw6"]]
        assert list(route.segments[1].switch_path) == [roles["sw6"], roles["sw1"]]

    def test_uses_fewer_fabric_links_than_updown(self, fig1_setup):
        topo, roles, router = fig1_setup
        ud = UpDownRouter(topo, router.orientation)
        r_itb = router.itb_route(roles["host_on_sw4"], roles["host_on_sw1"])
        r_ud = ud.route(roles["host_on_sw4"], roles["host_on_sw1"])
        assert len(r_itb.switch_hops()) < len(r_ud.switch_hops())

    def test_segments_each_valid_updown(self, fig1_setup):
        topo, roles, router = fig1_setup
        route = router.itb_route(roles["host_on_sw4"], roles["host_on_sw1"])
        for seg in route.segments:
            assert router.orientation.is_valid_updown_path(
                topo, list(seg.switch_path))


class TestAllPairs:
    def test_all_routes_valid_deliverable_deadlock_free(self, fig1_setup):
        topo, roles, router = fig1_setup
        routes = router.all_pairs()
        for (s, d), route in routes.items():
            assert route.src == s and route.dst == d
            current = s
            for seg in route.segments:
                assert topo.walk_route(current, list(seg.ports)) == seg.dst
                current = seg.dst
                assert router.orientation.is_valid_updown_path(
                    topo, list(seg.switch_path))
        assert is_deadlock_free(topo, routes.values())

    def test_inter_switch_hops_match_minimal_when_legalizable(self, fig1_setup):
        """With a host on every switch, ITB routing achieves minimal
        inter-switch hop counts for every pair (the paper's claim)."""
        topo, roles, router = fig1_setup
        mn = MinimalRouter(topo)
        for s, d in itertools.permutations(topo.hosts(), 2):
            route = router.itb_route(s, d)
            minimal = mn.route(s, d)
            assert len(route.switch_hops()) == len(minimal.switch_hops())

    def test_valid_paths_get_no_itbs(self, fig1_setup):
        """Pairs whose minimal path is already legal use zero ITBs."""
        topo, roles, router = fig1_setup
        route = router.itb_route(roles["host_on_sw0"], roles["host_on_sw1"])
        assert route.n_itbs == 0


class TestFallbacks:
    def _hostless_violation_topo(self):
        """Fig-1-like shortcut whose violation switch has NO host."""
        topo = Topology()
        sw = [topo.add_switch(n_ports=8) for i in range(5)]

        def join(a, b):
            topo.connect(sw[a], topo.free_port(sw[a]),
                         sw[b], topo.free_port(sw[b]), kind=PortKind.SAN)

        join(0, 1)
        join(0, 2)
        join(2, 4)
        join(1, 3)  # sw3 = the shortcut switch, kept hostless
        join(4, 3)
        hosts = {}
        for i in (0, 1, 2, 4):
            hosts[i] = topo.attach_host(sw[i], topo.free_port(sw[i]))
        topo.validate()
        return topo, sw, hosts

    def test_fallback_to_updown_when_no_host(self):
        topo, sw, hosts = self._hostless_violation_topo()
        orientation = build_orientation(topo, root=sw[0])
        router = ItbRouter(topo, orientation, allow_longer=False)
        ud = UpDownRouter(topo, orientation)
        # 4 -> 3 -> 1 is minimal but 3 is hostless; must fall back.
        route = router.itb_route(hosts[4], hosts[1])
        assert route.n_itbs == 0
        assert route.segments[0].switch_path == \
            ud.route(hosts[4], hosts[1]).switch_path

    def test_allow_longer_finds_legalizable_path(self):
        """allow_longer searches longer paths with ITBs where that
        beats the up*/down* fallback; here it can't beat it, so the
        result must still be at least as short."""
        topo, sw, hosts = self._hostless_violation_topo()
        orientation = build_orientation(topo, root=sw[0])
        router = ItbRouter(topo, orientation, allow_longer=True)
        ud = UpDownRouter(topo, orientation)
        route = router.itb_route(hosts[4], hosts[1])
        assert route.n_switches <= ud.route(hosts[4], hosts[1]).n_switches

    def test_same_host_rejected(self, fig1_setup):
        _, roles, router = fig1_setup
        with pytest.raises(RouteError):
            router.itb_route(roles["host_on_sw0"], roles["host_on_sw0"])


class TestHostPolicies:
    def test_first_host_policy_deterministic(self):
        topo = linear_switches(2, hosts_per_switch=3)
        s = topo.switches()[0]
        assert first_host_policy(topo, s, -1, -1) == topo.hosts_on(s)[0]

    def test_first_host_policy_raises_on_hostless(self):
        topo = Topology()
        s1 = topo.add_switch()
        s2 = topo.add_switch()
        topo.connect(s1, 0, s2, 0)
        topo.attach_host(s2, 1)
        with pytest.raises(RouteError):
            first_host_policy(topo, s1, -1, -1)

    def test_round_robin_rotates(self):
        topo = linear_switches(2, hosts_per_switch=3)
        s = topo.switches()[0]
        policy = round_robin_policy()
        hosts = topo.hosts_on(s)
        picks = [policy(topo, s, -1, -1) for _ in range(6)]
        assert picks == hosts + hosts

    def test_router_accepts_policy(self, fig1_setup):
        topo, roles, _ = fig1_setup
        orientation = build_orientation(topo, root=roles["sw0"])
        router = ItbRouter(topo, orientation, host_policy=round_robin_policy())
        route = router.itb_route(roles["host_on_sw4"], roles["host_on_sw1"])
        assert route.n_itbs == 1


class TestPropertyBased:
    @given(n=st.integers(min_value=3, max_value=12),
           seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_random_topologies_routes_always_sound(self, n, seed):
        """On any random irregular COW: every ITB route is deliverable,
        every segment is up*/down*-valid, the route set is deadlock-free,
        and inter-switch hop counts never exceed up*/down*'s."""
        topo = random_irregular(n, seed=seed)
        orientation = build_orientation(topo)
        router = ItbRouter(topo, orientation)
        ud = UpDownRouter(topo, orientation)
        routes = router.all_pairs()
        for (s, d), route in routes.items():
            current = s
            for seg in route.segments:
                assert topo.walk_route(current, list(seg.ports)) == seg.dst
                assert router.orientation.is_valid_updown_path(
                    topo, list(seg.switch_path))
                current = seg.dst
            assert current == d
            assert len(route.switch_hops()) <= \
                len(ud.route(s, d).switch_hops())
        assert is_deadlock_free(topo, routes.values())
