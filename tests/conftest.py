"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.sim.engine import Simulator
from repro.topology.generators import fig1_topology, fig6_testbed


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def quiet_timings() -> Timings:
    """Timings with host noise disabled — fully deterministic runs."""
    return Timings().with_overrides(host_jitter_sigma_ns=0.0)


@pytest.fixture
def fig6():
    """(topology, roles) for the paper's evaluation testbed."""
    return fig6_testbed()


@pytest.fixture
def fig1():
    """(topology, roles) for the Figure 1 example network."""
    return fig1_topology()


def make_fig6_network(firmware: str = "itb", routing: str = "updown",
                      timings: Timings | None = None, **kw):
    """Build a fig6 network with deterministic timings by default."""
    config = NetworkConfig(
        firmware=firmware,
        routing=routing,
        timings=timings or Timings().with_overrides(host_jitter_sigma_ns=0.0),
        **kw,
    )
    return build_network("fig6", config=config)


@pytest.fixture
def fig6_net_itb():
    return make_fig6_network(firmware="itb")


@pytest.fixture
def fig6_net_original():
    return make_fig6_network(firmware="original")


@pytest.fixture
def fig6_routes(fig6_net_itb):
    return fig6_paths(fig6_net_itb.topo, fig6_net_itb.roles)
