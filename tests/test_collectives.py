"""Tests for the collective operations layered over GM ports."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.collectives import (
    CollectiveContext,
    all_reduce_sum,
    barrier,
    broadcast,
    run_collective,
)
from repro.topology.generators import random_irregular


def build_cluster(n_switches=4, hosts_per_switch=2, seed=3):
    topo = random_irregular(n_switches, seed=seed,
                            hosts_per_switch=hosts_per_switch)
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network(topo, config=cfg)


class TestContext:
    def test_needs_two_hosts(self):
        net = build_cluster()
        only = sorted(net.gm_hosts)[:1]
        with pytest.raises(ValueError):
            CollectiveContext(net, hosts=only)

    def test_rank_mapping(self):
        net = build_cluster()
        ctx = CollectiveContext(net)
        assert ctx.n == len(net.gm_hosts)
        for h in ctx.hosts:
            assert ctx.host_of(ctx.rank_of[h]) == h


class TestBarrier:
    @pytest.mark.parametrize("n_switches,hps", [(2, 1), (4, 2), (3, 3)])
    def test_all_exit_after_last_entry(self, n_switches, hps):
        """Barrier semantics: nobody leaves before everyone arrived.

        Ranks are staggered by increasing start delays; the earliest
        exit time must be >= the latest entry time."""
        from repro.sim.engine import Timeout

        net = build_cluster(n_switches, hps)
        ctx = CollectiveContext(net)
        procs = barrier(ctx)
        entries = {}

        def staggered(rank, proc):
            def run():
                yield Timeout(1_000.0 * rank)
                entries[rank] = net.sim.now
                exit_time = yield net.sim.process(proc(),
                                                  name=f"bar[{rank}]")
                return exit_time

            return run

        handles = [net.sim.process(staggered(r, p)(), name=f"stag[{r}]")
                   for r, p in enumerate(procs)]
        net.sim.run(until=500_000_000)
        exits = [h.returned for h in handles]
        assert all(e is not None for e in exits)
        assert min(exits) >= max(entries.values())

    def test_two_hosts(self):
        net = build_cluster(2, 1)
        ctx = CollectiveContext(net)
        results = run_collective(ctx, barrier(ctx))
        assert len(results) == 2
        assert all(r is not None for r in results)


class TestBroadcast:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_everyone_gets_the_value(self, root):
        net = build_cluster(4, 2)
        ctx = CollectiveContext(net)
        results = run_collective(ctx, broadcast(ctx, root_rank=root))
        assert results == [42] * ctx.n

    def test_non_power_of_two_group(self):
        net = build_cluster(3, 3)  # 9 hosts
        ctx = CollectiveContext(net)
        results = run_collective(ctx, broadcast(ctx))
        assert results == [42] * 9


class TestAllReduce:
    def test_sum_correct(self):
        net = build_cluster(4, 2)
        ctx = CollectiveContext(net)
        values = list(range(1, ctx.n + 1))
        results = run_collective(ctx, all_reduce_sum(ctx, values))
        assert results == [sum(values)] * ctx.n

    def test_value_count_validated(self):
        net = build_cluster(2, 1)
        ctx = CollectiveContext(net)
        with pytest.raises(ValueError):
            all_reduce_sum(ctx, [1])

    def test_non_power_of_two(self):
        net = build_cluster(3, 2)  # 6 hosts
        ctx = CollectiveContext(net)
        values = [10, 20, 30, 40, 50, 60]
        results = run_collective(ctx, all_reduce_sum(ctx, values))
        assert results == [210] * 6


class TestSequencing:
    def test_barrier_then_broadcast(self):
        """Collectives compose on the same context/ports."""
        net = build_cluster(4, 1)
        ctx = CollectiveContext(net)
        run_collective(ctx, barrier(ctx))
        results = run_collective(ctx, broadcast(ctx))
        assert results == [42] * ctx.n


class TestGather:
    def test_root_collects_all_values(self):
        from repro.gm.collectives import gather

        net = build_cluster(4, 2)
        ctx = CollectiveContext(net)
        values = [10 * (i + 1) for i in range(ctx.n)]
        results = run_collective(ctx, gather(ctx, values))
        assert results[0] == values
        assert all(r is None for r in results[1:])

    def test_nonzero_root(self):
        from repro.gm.collectives import gather

        net = build_cluster(3, 2)
        ctx = CollectiveContext(net)
        values = list(range(ctx.n))
        results = run_collective(ctx, gather(ctx, values, root_rank=2))
        assert results[2] == values
        assert results[0] is None

    def test_non_power_of_two_group(self):
        from repro.gm.collectives import gather

        net = build_cluster(3, 3)  # 9 hosts
        ctx = CollectiveContext(net)
        values = [i * i for i in range(9)]
        results = run_collective(ctx, gather(ctx, values))
        assert results[0] == values

    def test_value_validation(self):
        from repro.gm.collectives import gather

        net = build_cluster(2, 1)
        ctx = CollectiveContext(net)
        with pytest.raises(ValueError):
            gather(ctx, [1])  # wrong count
        with pytest.raises(ValueError):
            gather(ctx, [1, 1 << 20])  # out of tag range
