"""Round-trip tests for every telemetry exporter."""

from __future__ import annotations

import json

import pytest

from repro.harness.chrome_trace import to_counter_events
from repro.harness.report import profiler_table, registry_table
from repro.obs.exporters import (
    parse_prometheus_text,
    parse_series_csv,
    sanitize_metric_name,
    series_to_csv,
    to_json,
    to_prometheus_text,
    write_json,
)
from repro.obs.profiler import Profiler
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.sim.engine import Simulator


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("nic_packets_sent", component="nic[host1]").inc(42)
    reg.counter("nic_packets_sent", component="nic[host2]").inc(7)
    reg.gauge("nic_send_queue_depth", component="nic[host1]").set(3)
    h = reg.histogram("packet_latency_ns", buckets=(100.0, 1000.0))
    for v in (50.0, 500.0, 5000.0):
        h.observe(v)
    return reg


def _sampled(reg: MetricsRegistry) -> Sampler:
    sim = Simulator()
    sampler = Sampler(sim, reg, interval_ns=10.0).start()
    sim.run(until=30.0)
    return sampler


class TestPrometheus:
    def test_round_trip_values_match(self):
        reg = _populated_registry()
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        key = ("nic_packets_sent", (("component", "nic[host1]"),))
        assert parsed[key] == 42.0
        key2 = ("nic_packets_sent", (("component", "nic[host2]"),))
        assert parsed[key2] == 7.0
        gkey = ("nic_send_queue_depth", (("component", "nic[host1]"),))
        assert parsed[gkey] == 3.0

    def test_histogram_export_is_cumulative(self):
        reg = _populated_registry()
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        assert parsed[("packet_latency_ns_bucket", (("le", "100"),))] == 1
        assert parsed[("packet_latency_ns_bucket", (("le", "1000"),))] == 2
        assert parsed[("packet_latency_ns_bucket", (("le", "+Inf"),))] == 3
        assert parsed[("packet_latency_ns_count", ())] == 3
        assert parsed[("packet_latency_ns_sum", ())] == pytest.approx(5550.0)

    def test_type_and_help_headers_present(self):
        reg = _populated_registry()
        text = to_prometheus_text(reg)
        assert "# TYPE nic_packets_sent counter" in text
        assert "# TYPE nic_send_queue_depth gauge" in text
        assert "# TYPE packet_latency_ns histogram" in text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("weird", component='q"uo\\te').inc(1)
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        assert parsed[("weird", (("component", 'q"uo\\te'),))] == 1.0

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("good_name") == "good_name"
        assert sanitize_metric_name("bad-name.1") == "bad_name_1"
        assert sanitize_metric_name("1leading") == "_1leading"


class TestJson:
    def test_document_round_trips_through_json(self, tmp_path):
        reg = _populated_registry()
        sampler = _sampled(reg)
        prof = Profiler()
        prof.events_by_component["send[a]"] = 5
        prof.events_total = 5
        path = write_json(tmp_path / "t.json", registry=reg,
                          sampler=sampler, profiler=prof)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-telemetry/1"
        by_name = {(m["name"], m["labels"].get("component", "")): m
                   for m in doc["metrics"]}
        assert by_name[("nic_packets_sent", "nic[host1]")]["value"] == 42.0
        hist = by_name[("packet_latency_ns", "")]
        assert hist["count"] == 3 and hist["buckets"][-1]["le"] == "+Inf"
        assert doc["sample_interval_ns"] == 10.0
        series = {s["name"]: s for s in doc["series"]}
        assert series["nic_send_queue_depth"]["values"] == [3.0] * 4
        assert doc["profile"]["events_total"] == 5

    def test_extra_fields_merge(self):
        doc = to_json(extra={"workload": "fig8"})
        assert doc["workload"] == "fig8"


class TestCsv:
    def test_round_trip(self):
        reg = _populated_registry()
        sampler = _sampled(reg)
        text = series_to_csv(sampler.all_series())
        rows = parse_series_csv(text)
        depth = [(t, v) for t, name, comp, v in rows
                 if name == "nic_send_queue_depth"]
        assert depth == [(0.0, 3.0), (10.0, 3.0), (20.0, 3.0), (30.0, 3.0)]
        comps = {comp for _t, name, comp, _v in rows
                 if name == "nic_send_queue_depth"}
        assert comps == {"nic[host1]"}

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            parse_series_csv("nope\n1,2,3,4")


class TestChromeCounters:
    def test_series_become_counter_events(self):
        reg = _populated_registry()
        sampler = _sampled(reg)
        events = to_counter_events(sampler.all_series())
        assert events and all(e["ph"] == "C" for e in events)
        depth = [e for e in events
                 if e["name"] == "nic_send_queue_depth nic[host1]"]
        assert [e["args"]["value"] for e in depth] == [3.0] * 4
        # Timestamps are in microseconds.
        assert depth[1]["ts"] == pytest.approx(0.01)


class TestReportTables:
    def test_registry_table_renders_nonzero(self):
        reg = _populated_registry()
        reg.counter("silent", component="nic[host1]")  # stays zero
        out = registry_table(reg)
        assert "nic_packets_sent" in out and "42" in out
        assert "silent" not in out

    def test_profiler_table_has_total_row(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        sim.schedule(1.0, lambda: None)
        sim.run()
        out = profiler_table(prof)
        assert "TOTAL" in out and "engine" in out
