"""Tests for the byte-level Stop&Go reference model.

Besides unit-testing the mechanism, these tests *quantify* the
packet-granularity approximation the main simulator uses: the extra
progress a blocked packet can make is bounded by the slack size.
"""

from __future__ import annotations

import pytest

from repro.network.flow_control import (
    StopGoChannel,
    required_slack_bytes,
    StopGoStats,
)
from repro.sim.engine import Simulator


BYTE_NS = 6.25
PROP_NS = 13.0


def make_channel(sim, **kw):
    return StopGoChannel(sim, prop_ns=PROP_NS, byte_ns=BYTE_NS, **kw)


class TestSlackSizing:
    def test_covers_control_round_trip(self):
        slack = required_slack_bytes(PROP_NS, BYTE_NS)
        in_flight = 2 * PROP_NS / BYTE_NS
        assert slack > in_flight

    def test_grows_with_cable_length(self):
        short = required_slack_bytes(10.0, BYTE_NS)
        long = required_slack_bytes(100.0, BYTE_NS)
        assert long > short

    def test_threshold_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            StopGoChannel(sim, PROP_NS, BYTE_NS, slack_bytes=8,
                          stop_threshold=9)
        with pytest.raises(ValueError):
            StopGoChannel(sim, PROP_NS, BYTE_NS, slack_bytes=8,
                          stop_threshold=4, go_threshold=4)


class TestUnblockedTransfer:
    def test_completes_all_bytes(self):
        sim = Simulator()
        ch = make_channel(sim)
        done = ch.transfer(200)
        stats: StopGoStats = sim.run_until_event(done)
        assert stats.bytes_sent == 200
        assert stats.bytes_delivered == 200

    def test_throughput_is_link_rate(self):
        """Unblocked, Stop&Go adds no sustained slowdown: total time is
        within a small constant of bytes x byte_time."""
        sim = Simulator()
        ch = make_channel(sim)
        done = ch.transfer(400)
        sim.run_until_event(done)
        ideal = 400 * BYTE_NS
        assert sim.now <= ideal * 1.1 + 10 * BYTE_NS

    def test_never_overruns_slack(self):
        sim = Simulator()
        ch = make_channel(sim)
        done = ch.transfer(500)
        stats = sim.run_until_event(done)
        assert stats.max_slack_occupancy <= ch.slack_bytes


class TestBlockedReceiver:
    def run_with_block(self, block_at_ns, unblock_at_ns, n_bytes=300):
        sim = Simulator()
        ch = make_channel(sim)
        sim.schedule(block_at_ns, ch.block_receiver)
        sim.schedule(unblock_at_ns, ch.unblock_receiver)
        done = ch.transfer(n_bytes)
        stats = sim.run_until_event(done)
        return sim, ch, stats

    def test_sender_stops_within_slack(self):
        """After the receiver blocks, the sender transmits at most the
        slack's worth of further bytes — the bound on the
        packet-granularity approximation."""
        sim, ch, stats = self.run_with_block(200.0, 5_000.0)
        assert stats.stops_sent >= 1
        assert stats.sender_stalled_ns > 0
        assert stats.max_slack_occupancy <= ch.slack_bytes

    def test_no_bytes_lost_across_stall(self):
        sim, ch, stats = self.run_with_block(150.0, 3_000.0, n_bytes=250)
        assert stats.bytes_delivered == 250

    def test_go_resumes_transmission(self):
        sim, ch, stats = self.run_with_block(150.0, 3_000.0)
        assert stats.gos_sent >= 1
        # Completion happens after the unblock instant.
        assert sim.now > 3_000.0

    def test_stall_duration_reflects_block(self):
        """A longer receiver stall stalls the sender proportionally."""
        _s1, _c1, short = self.run_with_block(150.0, 2_000.0)
        _s2, _c2, long = self.run_with_block(150.0, 8_000.0)
        assert long.sender_stalled_ns > short.sender_stalled_ns


class TestApproximationBound:
    def test_blocked_progress_bounded_by_slack(self):
        """The headline validation: versus the main simulator's
        "blocked packet makes zero progress" assumption, the byte-level
        model lets at most ``slack_bytes`` extra bytes through —
        negligible against any real packet."""
        sim = Simulator()
        ch = make_channel(sim)
        ch.block_receiver()  # blocked from the start
        ch.transfer(1000)
        sim.run(until=100_000.0)
        # Sender pushed at most the slack (plus control-symbol flight).
        assert ch.stats.bytes_sent <= ch.slack_bytes + 4
        assert ch.stats.bytes_delivered == 0

    def test_one_transfer_at_a_time(self):
        sim = Simulator()
        ch = make_channel(sim)
        ch.transfer(10)
        with pytest.raises(RuntimeError):
            ch.transfer(10)
