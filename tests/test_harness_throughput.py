"""Tests for the network-level throughput harness (EXP-M1), kept small."""

from __future__ import annotations

import pytest

from repro.harness.throughput import build_load_network, run_throughput
from repro.harness.workloads import (
    drive_traffic,
    hotspot_traffic,
    permutation_traffic,
    uniform_traffic,
)
from repro.topology.generators import random_irregular

import numpy as np


class TestPatterns:
    def test_uniform_never_self(self):
        hosts = [10, 11, 12, 13]
        choose = uniform_traffic(hosts)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert choose(10, rng) != 10

    def test_hotspot_fraction(self):
        hosts = list(range(10))
        choose = hotspot_traffic(hosts, hotspot=3, fraction=0.5)
        rng = np.random.default_rng(1)
        picks = [choose(0, rng) for _ in range(2000)]
        frac = picks.count(3) / len(picks)
        assert 0.45 < frac < 0.65  # 0.5 directed + uniform leakage

    def test_hotspot_fraction_validated(self):
        with pytest.raises(ValueError):
            hotspot_traffic([1, 2], hotspot=1, fraction=1.5)

    def test_permutation_is_fixed_derangement(self):
        hosts = list(range(8))
        choose = permutation_traffic(hosts, seed=3)
        rng = np.random.default_rng(0)
        first = [choose(h, rng) for h in hosts]
        second = [choose(h, rng) for h in hosts]
        assert first == second
        assert all(a != b for a, b in zip(hosts, first))
        assert sorted(first) == hosts


class TestDriveTraffic:
    def test_accounting_consistent(self):
        topo = random_irregular(4, seed=1)
        net = build_load_network(topo, "itb")
        stats = drive_traffic(net, rate_bytes_per_ns_per_host=0.01,
                              packet_size=128, duration_ns=40_000,
                              warmup_ns=5_000)
        assert stats.offered_packets > 0
        assert 0 < stats.delivered_packets <= stats.offered_packets + 5
        assert stats.delivered_bytes == \
            stats.delivered_packets * 128
        assert stats.mean_latency_ns > 0
        assert stats.p99_latency_ns >= stats.mean_latency_ns

    def test_rate_validated(self):
        topo = random_irregular(4, seed=1)
        net = build_load_network(topo, "itb")
        with pytest.raises(ValueError):
            drive_traffic(net, rate_bytes_per_ns_per_host=0.0,
                          packet_size=128, duration_ns=1_000)

    def test_deterministic_given_seed(self):
        def run():
            topo = random_irregular(4, seed=1)
            net = build_load_network(topo, "itb")
            return drive_traffic(net, rate_bytes_per_ns_per_host=0.01,
                                 packet_size=128, duration_ns=30_000,
                                 seed=9).delivered_packets

        assert run() == run()


class TestThroughputSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_throughput(
            n_switches=8, packet_size=256,
            rates=(0.01, 0.05, 0.10),
            duration_ns=120_000, warmup_ns=20_000,
            hosts_per_switch=2,
        )

    def test_series_structure(self, sweep):
        assert len(sweep.series("updown")) == 3
        assert len(sweep.series("itb")) == 3

    def test_low_load_equivalence(self, sweep):
        """Well below saturation both routings accept the offered load."""
        ud0 = sweep.series("updown")[0]
        itb0 = sweep.series("itb")[0]
        assert ud0.accepted == pytest.approx(
            ud0.offered_bytes_per_ns_per_host, rel=0.3)
        assert itb0.accepted == pytest.approx(
            itb0.offered_bytes_per_ns_per_host, rel=0.3)

    def test_itb_peak_at_least_updown(self, sweep):
        """The paper's motivating claim, at small scale: ITB sustains
        at least up*/down*'s throughput (the gap widens with size —
        benchmarked in benchmarks/test_bench_throughput.py)."""
        assert sweep.peak_accepted("itb") >= 0.95 * sweep.peak_accepted("updown")

    def test_latency_grows_with_load(self, sweep):
        for routing in ("updown", "itb"):
            series = sweep.series(routing)
            lats = [p.mean_latency_ns for p in series]
            assert lats[-1] > lats[0]

    def test_saturation_visible(self, sweep):
        """At the top rate the network no longer accepts everything."""
        top = sweep.series("updown")[-1]
        assert top.accepted < top.offered_bytes_per_ns_per_host * 0.98
