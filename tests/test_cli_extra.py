"""Additional CLI coverage: apps subcommand, parser defaults, fig1."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestAppsCommand:
    def test_apps_runs_small(self, capsys):
        rc = main([
            "apps", "--switches", "4", "--iterations", "1",
            "--packet-size", "128", "--hosts-per-switch", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "EXP-M2" in out
        assert "all-to-all" in out and "ring" in out


class TestParserDefaults:
    def test_fig7_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.iterations == 20
        assert not args.full and not args.plot

    def test_throughput_defaults(self):
        args = build_parser().parse_args(["throughput"])
        assert args.switches == 16
        assert args.packet_size == 512
        assert len(args.rates) == 3

    def test_validate_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.iterations == 20
        assert not args.throughput

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_discover_random(self, capsys):
        rc = main(["discover", "--topology", "random", "--switches", "4"])
        assert rc == 0
        assert "switches discovered" in capsys.readouterr().out


class TestRunCommand:
    def test_run_experiment_by_name(self, capsys):
        rc = main(["run", "fig7", "--iterations", "2"])
        assert rc == 0
        assert "paper ~125 ns" in capsys.readouterr().out

    def test_run_with_jobs_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "doc.json"
        rc = main(["run", "root-study", "--switches", "8",
                   "--jobs", "2", "--save", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        from repro.harness.persist import load_results

        loaded = load_results(out_path)
        assert len(loaded["root-study"].rows) == 2
        assert loaded["specs"]["root-study"].experiment == "root-study"

    def test_list_shows_registered_experiments(self, capsys):
        rc = main(["list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("fig7", "fig8", "throughput", "apps", "root-study"):
            assert name in out

    def test_unknown_experiment_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "teleport"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err and "fig7" in err

    def test_jobs_zero_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["fig7", "--jobs", "0"])
        assert exc_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_jobs_non_integer_exits_2(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["fig7", "--jobs", "many"])
        assert exc_info.value.code == 2


class TestAllCommand:
    def test_all_regenerates_and_saves(self, capsys, tmp_path):
        out_path = tmp_path / "results.json"
        rc = main(["all", "--iterations", "3", "--save", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig7" in out and "fig8" in out
        assert out_path.exists()
        from repro.harness.persist import load_results

        loaded = load_results(out_path)
        assert "fig7" in loaded and "fig8" in loaded

    def test_all_without_save(self, capsys):
        rc = main(["all", "--iterations", "3"])
        assert rc == 0
        assert "per-ITB overhead" in capsys.readouterr().out
