"""Tests for the 16->512 switch scale study (EXP-SCALE)."""

from __future__ import annotations

import pytest

from repro.exp import Runner, get_experiment
from repro.harness.persist import load_results, save_results
from repro.harness.scale_study import (
    ScaleDynamicPoint,
    ScaleStudyResult,
    ScaleStudyRow,
    family_topology,
    fat_tree_k_for,
    measure_scale_point,
)
from repro.routing.cache import RouteCache


def _quick_spec(**params):
    spec = get_experiment("scale-study").default_spec()
    merged = dict(spec.params)
    merged.update({"targets": [16], "dynamic_max": 16, "rate": 0.06})
    merged.update(params)
    return spec.replace(params=merged, duration_ns=40_000.0,
                        warmup_ns=8_000.0)


class TestFamilyConfig:
    def test_fat_tree_ladder(self):
        assert fat_tree_k_for(16) == 2
        assert fat_tree_k_for(32) == 4
        assert fat_tree_k_for(64) == 6
        assert fat_tree_k_for(128) == 10
        assert fat_tree_k_for(512) == 20

    def test_families_land_at_or_below_target(self):
        for family in ("clos", "fattree", "irregular"):
            for target in (16, 64, 128):
                topo = family_topology(family, target, seed=11)
                assert len(topo.switches()) <= target
                topo.validate()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            family_topology("mesh", 16, seed=1)


class TestMeasureScalePoint:
    def test_irregular_itb_restores_minimal_paths(self):
        """The paper's claim at scale: ITB coverage is 1.0 and its
        saturation bound beats up*/down*'s on irregular fabrics."""
        ud = measure_scale_point("irregular", 32, "updown", topo_seed=11,
                                 dynamic_max=0)
        itb = measure_scale_point("irregular", 32, "itb", topo_seed=11,
                                  dynamic_max=0)
        assert itb.minimal_coverage == 1.0
        assert itb.avg_stretch == 1.0
        assert ud.minimal_coverage < 1.0
        assert (itb.saturation_bytes_per_ns_per_host
                > ud.saturation_bytes_per_ns_per_host)
        assert itb.root_load_fraction < ud.root_load_fraction
        assert itb.itb_pairs_fraction > 0
        assert itb.total_itbs > 0
        assert ud.dynamic is None  # dynamic_max=0 suppresses traffic

    def test_regular_fabrics_degenerate_to_updown(self):
        """On Clos and fat trees the spine/core switches carry no
        hosts, so ITB has nothing to legalize with — the mechanism
        honestly reports zero splits and identical coverage."""
        for family in ("clos", "fattree"):
            itb = measure_scale_point(family, 32, "itb", topo_seed=11,
                                      dynamic_max=0)
            ud = measure_scale_point(family, 32, "updown", topo_seed=11,
                                     dynamic_max=0)
            assert itb.itb_pairs_fraction == 0.0
            assert itb.total_itbs == 0
            assert itb.minimal_coverage == ud.minimal_coverage == 1.0
            assert (itb.saturation_bytes_per_ns_per_host
                    == ud.saturation_bytes_per_ns_per_host)

    def test_dynamic_point_present_when_small(self):
        row = measure_scale_point("irregular", 16, "updown", topo_seed=11,
                                  rate=0.06, dynamic_max=16,
                                  duration_ns=40_000.0, warmup_ns=8_000.0)
        assert row.dynamic is not None
        assert row.dynamic.offered == 0.06
        assert row.dynamic.accepted > 0
        assert 0 < row.dynamic.delivered_fraction <= 1.0


class TestQuickRun:
    def test_quick_study_end_to_end(self, tmp_path):
        path = tmp_path / "scale.json"
        report = Runner(cache=RouteCache()).run(
            _quick_spec(), save=str(path))
        result = report.result
        assert isinstance(result, ScaleStudyResult)
        # 3 families x 1 target x 2 routings.
        assert len(result.rows) == 6
        assert result.saturation_ratio("irregular", 16) >= 1.0

        row = result.row("irregular", 16, "itb")
        assert row.n_switches == 16
        assert row.dynamic is not None

        loaded = load_results(path)
        assert loaded["scale-study"] == result

    def test_render_mentions_ratio(self):
        exp = get_experiment("scale-study")
        spec = _quick_spec()
        report = Runner(cache=RouteCache()).run(spec)
        text = exp.render(spec, report.result, args=None)
        assert "EXP-SCALE" in text
        assert "saturation" in text
        assert "irregular@16" in text

    def test_result_round_trips_standalone(self, tmp_path):
        row = ScaleStudyRow(
            family="irregular", target=64, n_switches=64, n_hosts=64,
            n_links=160, diameter=5, root=3, routing="itb", n_pairs=4032,
            minimal_coverage=1.0, avg_stretch=1.0,
            root_load_fraction=0.1, max_channel_load=94,
            saturation_bytes_per_ns_per_host=0.107,
            itb_pairs_fraction=0.41, total_itbs=1700,
            max_itbs_per_host=300, build_s=0.01, route_s=0.11,
            dynamic=ScaleDynamicPoint(offered=0.08, accepted=0.05,
                                      mean_latency_ns=9000.0,
                                      delivered_fraction=0.9),
        )
        result = ScaleStudyResult(
            families=("irregular",), targets=(64,),
            routings=("updown", "itb"), topo_seed=11, rows=[row],
        )
        path = tmp_path / "standalone.json"
        save_results(path, {"scale-study": result})
        assert load_results(path)["scale-study"] == result


class TestTopoCli:
    def test_stats_view(self, capsys):
        from repro.cli import main

        assert main(["topo", "clos:m=4,n=1,r=12"]) == 0
        out = capsys.readouterr().out
        assert "clos-m4-n1-r12" in out
        assert "root candidates" in out
        assert "spine0" in out

    def test_text_and_dot_views(self, capsys):
        from repro.cli import main

        assert main(["topo", "fattree:k=2", "--text"]) == 0
        assert "topology" in capsys.readouterr().out
        assert main(["topo", "fattree:k=2", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_bad_spec_is_a_clean_error(self, capsys):
        from repro.cli import main

        assert main(["topo", "nope:n=3"]) == 2
        assert "unknown generator" in capsys.readouterr().err

    def test_experiment_registered(self):
        from repro.exp import list_experiments

        assert "scale-study" in {e.name for e in list_experiments()}
