"""Firmware edge cases: boundary sizes, congestion at transit hosts,
concurrent in-transit streams."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.sim.engine import Timeout


def quiet_net(**kw):
    defaults = dict(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    defaults.update(kw)
    return build_network("fig6", config=NetworkConfig(**defaults))


def send_and_wait(net, src, dst, size, route=None, count=1):
    """Fire `count` packets; return the TransitPackets on completion."""
    done = net.sim.event("batch")
    out = []

    def on_final(tp):
        out.append(tp)
        if len(out) == count:
            done.succeed()

    for _ in range(count):
        net.nics[net.host_id(src)].firmware.host_send(
            dst=net.host_id(dst), payload_len=size, gm={"last": True},
            on_delivered=on_final, route=route,
        )
    net.sim.run_until_event(done)
    return out


class TestBoundarySizes:
    def test_zero_payload_through_itb(self):
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        (tp,) = send_and_wait(net, "host1", "host2", 0, route=paths.itb5)
        assert not tp.dropped
        assert net.nic("itb").stats.packets_forwarded == 1

    def test_one_byte_through_itb(self):
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        (tp,) = send_and_wait(net, "host1", "host2", 1, route=paths.itb5)
        assert not tp.dropped

    def test_mtu_sized_packet_through_itb(self):
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        (tp,) = send_and_wait(net, "host1", "host2", 4096, route=paths.itb5)
        assert not tp.dropped
        assert tp.t_complete_dst is not None

    def test_itb_overhead_same_for_tiny_and_huge(self):
        """Cut-through: the per-ITB latency penalty is size-invariant."""
        def one_way(size, route_name):
            net = quiet_net()
            paths = fig6_paths(net.topo, net.roles)
            route = paths.itb5 if route_name == "itb" else paths.ud5
            (tp,) = send_and_wait(net, "host1", "host2", size, route=route)
            return tp.t_complete_dst - tp.t_inject

        small = one_way(4, "itb") - one_way(4, "ud")
        large = one_way(4096, "itb") - one_way(4096, "ud")
        assert small == pytest.approx(large, abs=50.0)


class TestTransitCongestion:
    def test_in_transit_stream_fills_buffers_and_backpressures(self):
        """Many in-transit packets funneled through one transit host:
        fixed buffers force wire stalls, yet everything delivers."""
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        tps = send_and_wait(net, "host1", "host2", 2048,
                            route=paths.itb5, count=8)
        assert all(not tp.dropped for tp in tps)
        assert net.nic("itb").stats.packets_forwarded == 8

    def test_transit_host_own_traffic_interleaves(self):
        """The transit host keeps sending its own packets while
        forwarding: both streams complete, and at least one
        re-injection takes the pending path."""
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        itb_host = net.roles["itb"]
        h2 = net.roles["host2"]
        own_done = {"n": 0}

        def own_traffic():
            def on_own(_tp):
                own_done["n"] += 1

            for _ in range(4):
                net.nics[itb_host].firmware.host_send(
                    dst=h2, payload_len=4096, gm={"last": True},
                    on_delivered=on_own)
                yield Timeout(5_000.0)

        net.sim.process(own_traffic(), name="own")

        def forwarded_traffic():
            yield Timeout(12_000.0)
            # launched mid-drain of the transit host's own packets

        net.sim.process(forwarded_traffic(), name="gap")
        tps = send_and_wait(net, "host1", "host2", 512,
                            route=paths.itb5, count=4)
        net.sim.run(until=net.sim.now + 2_000_000)
        assert all(not tp.dropped for tp in tps)
        assert own_done["n"] == 4
        stats = net.nic("itb").stats
        assert stats.itb_pending + stats.itb_immediate == 4

    def test_reverse_direction_unaffected_by_forwarding(self):
        """Forwarding occupies the transit host's send engine, not the
        reverse channels: host2 -> host1 traffic flows concurrently."""
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        results = {}
        done = net.sim.event("both")

        def on_fwd(tp):
            results["fwd"] = tp
            if len(results) == 2:
                done.succeed()

        def on_rev(tp):
            results["rev"] = tp
            if len(results) == 2:
                done.succeed()

        net.nics[net.roles["host1"]].firmware.host_send(
            dst=net.roles["host2"], payload_len=4096,
            gm={"last": True}, on_delivered=on_fwd, route=paths.itb5)
        net.nics[net.roles["host2"]].firmware.host_send(
            dst=net.roles["host1"], payload_len=4096,
            gm={"last": True}, on_delivered=on_rev, route=paths.rev2)
        net.sim.run_until_event(done)
        assert not results["fwd"].dropped and not results["rev"].dropped


class TestStatsConsistency:
    def test_forward_counts_and_bytes(self):
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        send_and_wait(net, "host1", "host2", 100, route=paths.itb5, count=3)
        itb_stats = net.nic("itb").stats
        assert itb_stats.packets_forwarded == 3
        assert itb_stats.packets_received == 3
        # The transit host never sourced traffic of its own.
        assert itb_stats.packets_sent == 0
        # Destination saw exactly the 3 deliveries.
        assert net.nic("host2").stats.packets_received == 3

    def test_itb_times_recorded_per_forward(self):
        net = quiet_net()
        paths = fig6_paths(net.topo, net.roles)
        (tp,) = send_and_wait(net, "host1", "host2", 64, route=paths.itb5)
        assert len(tp.itb_times) == 1
        assert tp.t_inject < tp.itb_times[0] < tp.t_complete_dst
