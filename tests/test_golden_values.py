"""Golden-value regression tests.

The simulation is deterministic with host noise disabled, so the
headline latencies are exact numbers.  Pinning them here turns any
accidental change to the timing model, the worm pipeline, or the
firmware control flow into a loud, precise failure — the band checks
in the harness tests would only catch large drifts.

If a change is *intentional* (recalibration, new model feature on the
default path), update these constants and record the reason in the
commit alongside an EXPERIMENTS.md refresh.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths

# Exact half-round-trip means (ns), 3 iterations, zero host noise.
GOLDEN = {
    "ud5_halfrtt_16": 9300.75,
    "itb5_halfrtt_16": 9977.275,
    "ud5_halfrtt_512": 14384.75,
    "itb5_halfrtt_512": 15061.275,
    "ud5_halfrtt_4096": 51120.75,
    "itb5_halfrtt_4096": 51797.275,
    "orig_fig7_halfrtt_64": 9456.65,
}


def quiet_config(firmware="itb"):
    return NetworkConfig(
        firmware=firmware, routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )


def half_rtt(firmware: str, route_name: str, size: int) -> float:
    net = build_network("fig6", config=quiet_config(firmware))
    paths = fig6_paths(net.topo, net.roles)
    route_ab = {
        "ud5": paths.ud5,
        "itb5": paths.itb5,
        "fig7": paths.fig7_fwd,
    }[route_name]
    result = net.ping_pong("host1", "host2", size=size, iterations=3,
                           route_ab=route_ab, route_ba=paths.rev2)
    return result.mean_ns


class TestGoldenLatencies:
    @pytest.mark.parametrize("size", [16, 512, 4096])
    def test_ud5_path(self, size):
        assert half_rtt("itb", "ud5", size) == pytest.approx(
            GOLDEN[f"ud5_halfrtt_{size}"], abs=0.01)

    @pytest.mark.parametrize("size", [16, 512, 4096])
    def test_itb5_path(self, size):
        assert half_rtt("itb", "itb5", size) == pytest.approx(
            GOLDEN[f"itb5_halfrtt_{size}"], abs=0.01)

    def test_original_firmware_fig7_path(self):
        assert half_rtt("original", "fig7", 64) == pytest.approx(
            GOLDEN["orig_fig7_halfrtt_64"], abs=0.01)


class TestGoldenDerivedDeltas:
    def test_per_itb_overhead_exact(self):
        """The golden series encode the 1.353 us per-ITB overhead."""
        for size in (16, 512, 4096):
            delta = 2 * (GOLDEN[f"itb5_halfrtt_{size}"]
                         - GOLDEN[f"ud5_halfrtt_{size}"])
            assert delta == pytest.approx(1353.05, abs=0.1)

    def test_wire_time_dominates_growth(self):
        """Between 512 B and 4096 B, latency grows by the extra wire +
        PCI time of 3584 bytes (per direction, both already in the
        half-RTT mean)."""
        t = Timings()
        growth = GOLDEN["ud5_halfrtt_4096"] - GOLDEN["ud5_halfrtt_512"]
        expected = 3584 * (t.link_byte_ns + 2 * t.pci_byte_ns)
        assert growth == pytest.approx(expected, rel=0.01)
