"""Tests for the network builder, config, and mapper."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import FirmwareKind, NetworkConfig, RoutingKind
from repro.core.timings import Timings
from repro.gm.mapper import run_mapper
from repro.mcp.buffers import BufferPool, FixedBuffers
from repro.mcp.firmware import ItbFirmware, OriginalFirmware
from repro.routing.routes import RouteError, SourceRoute
from repro.topology.generators import fig6_testbed, random_irregular


class TestConfig:
    def test_string_coercion(self):
        cfg = NetworkConfig(firmware="original", routing="updown")
        assert cfg.firmware is FirmwareKind.ORIGINAL
        assert cfg.routing is RoutingKind.UPDOWN

    def test_bad_firmware_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(firmware="quantum")

    def test_bad_buffer_kind_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(recv_buffer_kind="imaginary")


class TestBuildNetwork:
    def test_named_topologies(self):
        for name in ("fig6", "fig1"):
            net = build_network(name)
            assert net.topo.hosts()

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_network("fig99")

    def test_role_and_name_lookup(self):
        net = build_network("fig6")
        h = net.host_id("host1")
        assert net.host_id(h) == h
        assert net.gm("host1").host == h
        assert net.nic("host1").host == h
        with pytest.raises(KeyError):
            net.host_id("nobody")

    def test_firmware_kinds(self):
        net_o = build_network("fig6", firmware="original")
        net_i = build_network("fig6", firmware="itb")
        assert isinstance(net_o.nic("host1").firmware, OriginalFirmware)
        assert isinstance(net_i.nic("host1").firmware, ItbFirmware)

    def test_firmware_overrides(self):
        topo, roles = fig6_testbed()
        cfg = NetworkConfig(
            firmware="original",
            firmware_overrides={roles["itb"]: "itb"},
        )
        net = build_network(topo, config=cfg, roles=roles)
        assert isinstance(net.nic("host1").firmware, OriginalFirmware)
        assert isinstance(net.nic("itb").firmware, ItbFirmware)

    def test_buffer_kinds(self):
        net_f = build_network("fig6",
                              config=NetworkConfig(recv_buffer_kind="fixed"))
        net_p = build_network(
            "fig6", config=NetworkConfig(recv_buffer_kind="pool",
                                         pool_bytes=2048))
        assert isinstance(net_f.nic("host1").recv_buffers, FixedBuffers)
        pool = net_p.nic("host1").recv_buffers
        assert isinstance(pool, BufferPool)
        assert pool.capacity_bytes == 2048

    def test_tables_stamped_for_all_pairs(self):
        net = build_network("fig6", routing="itb")
        hosts = net.topo.hosts()
        for h in hosts:
            table = net.nics[h].route_table
            assert table is not None
            assert table.destinations() == sorted(x for x in hosts if x != h)

    def test_total_stats_aggregates(self):
        net = build_network("fig6")
        stats = net.total_stats()
        assert stats["packets_sent"] == 0
        assert "recv_blocked_ns" in stats

    def test_kw_shortcuts_override_config(self):
        t = Timings().with_overrides(host_send_sw_ns=1.0)
        net = build_network("fig6", firmware="original", timings=t)
        assert net.config.firmware is FirmwareKind.ORIGINAL
        assert net.config.timings.host_send_sw_ns == 1.0


class TestMapper:
    def test_updown_vs_itb_tables_differ(self):
        """On the Figure 1 network the two mappers disagree on the
        showcase pair."""
        from repro.topology.generators import fig1_topology

        topo, roles = fig1_topology()
        net_ud = build_network(topo, routing="updown", roles=dict(roles))
        topo2, roles2 = fig1_topology()
        net_itb = build_network(topo2, routing="itb", roles=dict(roles2))
        src, dst = roles["host_on_sw4"], roles["host_on_sw1"]
        r_ud = net_ud.nics[src].route_table.lookup(dst)
        r_itb = net_itb.nics[src].route_table.lookup(dst)
        assert r_ud.n_itbs == 0
        assert r_itb.n_itbs == 1

    def test_overrides_stamped(self):
        topo, roles = fig6_testbed()
        h1, h2 = roles["host1"], roles["host2"]
        special = SourceRoute(src=h1, dst=h2, ports=(0, 6, 1),
                              switch_path=(roles["sw1"], roles["sw2"],
                                           roles["sw2"]))
        net = build_network(topo, roles=roles,
                            route_overrides={(h1, h2): special})
        looked_up = net.nics[h1].route_table.lookup(h2)
        assert looked_up.segments[0].ports == special.ports
        # The reverse direction still comes from the mapper.
        assert net.nics[h2].route_table.lookup(h1)

    def test_unknown_routing_rejected(self):
        topo, roles = fig6_testbed()
        from repro.nic.lanai import Nic
        from repro.network.fabric import Fabric
        from repro.sim.engine import Simulator

        sim = Simulator()
        fabric = Fabric(sim, topo, Timings())
        nics = {h: Nic(sim, fabric, Timings(), h) for h in topo.hosts()}
        with pytest.raises(RouteError):
            run_mapper(topo, nics, routing="teleport")

    def test_mapper_on_random_topology(self):
        topo = random_irregular(8, seed=2)
        net = build_network(topo, routing="itb")
        hosts = topo.hosts()
        table = net.nics[hosts[0]].route_table
        assert len(table) == len(hosts) - 1
