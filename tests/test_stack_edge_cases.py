"""Edge cases across the layered stack (ports, IP, TCP-lite)."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.ip import IpEndpoint
from repro.gm.ports import GmPort, GmPortError
from repro.gm.tcp_lite import MSS, TcpLiteEndpoint
from repro.network.faults import FaultPlan, install_fault_plan


def build(reliable=False):
    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network("fig6", config=cfg)


class TestPortCloseSemantics:
    def test_pending_receive_fails_on_close(self):
        net = build(reliable=True)
        port = GmPort(net.gm("host1"), 2)
        failures = []

        def waiter():
            try:
                yield port.receive()
            except GmPortError:
                failures.append(True)

        net.sim.process(waiter(), name="w")
        net.sim.run(until=1_000)  # the receive is now pending
        port.close()
        net.sim.run(until=2_000)
        assert failures == [True]

    def test_send_on_closed_port_rejected(self):
        net = build(reliable=True)
        port = GmPort(net.gm("host1"), 2)
        port.close()
        with pytest.raises(GmPortError):
            port.send(net.roles["host2"], 2, 10)


class TestIpUnderSustainedLoss:
    def test_half_the_datagrams_survive_heavy_loss(self):
        """Statistical sanity: with per-fragment corruption, some
        single-fragment datagrams still get through and every delivery
        has the right length."""
        net = build()
        a = IpEndpoint(net.gm("host1"))
        b = IpEndpoint(net.gm("host2"))
        b.reassembly_timeout_ns = 2_000_000.0
        got = []
        b.on_datagram(got.append)
        install_fault_plan(net, FaultPlan(corrupt_probability=0.3, seed=4))
        n = 20
        for _ in range(n):
            a.send(net.roles["host2"], 500)
        net.sim.run(until=200_000_000)
        assert 0 < len(got) < n
        assert all(d.length == 500 for d in got)
        assert b.partial_reassemblies == 0

    def test_stats_add_up(self):
        net = build()
        a = IpEndpoint(net.gm("host1"))
        b = IpEndpoint(net.gm("host2"))
        got = []
        b.on_datagram(got.append)
        for size in (0, 100, 9000):
            a.send(net.roles["host2"], size)
        net.sim.run(until=100_000_000)
        assert a.stats.datagrams_sent == 3
        assert b.stats.datagrams_delivered == 3
        assert b.stats.fragments_received == a.stats.fragments_sent


class TestTcpWindowAndLoss:
    def test_small_window_with_repeated_loss_still_completes(self):
        net = build()
        a = TcpLiteEndpoint(net.gm("host1"), window_bytes=MSS,
                            rto_ns=300_000.0)
        b = TcpLiteEndpoint(net.gm("host2"))
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        net.sim.run(until=net.sim.now + 1_000_000)
        install_fault_plan(net, FaultPlan(corrupt_probability=0.25, seed=8))
        size = 6 * MSS
        done = a.send_stream(net.roles["host2"], size)
        net.sim.run_until_event(done, max_events=50_000_000)
        assert b.stats.bytes_delivered == size
        assert a.stats.retransmissions > 0

    def test_two_streams_back_to_back(self):
        net = build()
        a = TcpLiteEndpoint(net.gm("host1"))
        b = TcpLiteEndpoint(net.gm("host2"))
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        net.sim.run_until_event(a.send_stream(net.roles["host2"], 1000))
        net.sim.run_until_event(a.send_stream(net.roles["host2"], 2000))
        assert b.stats.bytes_delivered == 3000

    def test_bidirectional_connections_independent(self):
        net = build()
        a = TcpLiteEndpoint(net.gm("host1"))
        b = TcpLiteEndpoint(net.gm("host2"))
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        net.sim.run_until_event(b.connect(net.roles["host1"]))
        net.sim.run_until_event(a.send_stream(net.roles["host2"], 500))
        net.sim.run_until_event(b.send_stream(net.roles["host1"], 700))
        assert b.stats.bytes_delivered == 500
        assert a.stats.bytes_delivered == 700


class TestLayerCoexistence:
    def test_gm_ip_tcp_share_one_nic(self):
        """All three layers on the same hosts at once: each delivery
        path stays separate."""
        net = build(reliable=True)
        ip_a = IpEndpoint(net.gm("host1"))
        ip_b = IpEndpoint(net.gm("host2"))
        tcp_a = TcpLiteEndpoint(net.gm("host1"))
        tcp_b = TcpLiteEndpoint(net.gm("host2"))
        dgrams = []
        ip_b.on_datagram(dgrams.append)
        gm_msgs = []

        def rx():
            while True:
                msg = yield net.gm("host2").receive()
                gm_msgs.append(msg)

        net.sim.process(rx(), name="rx")
        net.sim.run_until_event(tcp_a.connect(net.roles["host2"]))
        net.gm("host1").send(net.roles["host2"], 111)
        ip_a.send(net.roles["host2"], 222)
        net.sim.run_until_event(
            tcp_a.send_stream(net.roles["host2"], 333))
        net.sim.run(until=net.sim.now + 5_000_000)
        assert [m.length for m in gm_msgs] == [111]
        assert [d.length for d in dgrams] == [222]
        assert tcp_b.stats.bytes_delivered == 333
