"""Tests for the engine profiler hooks."""

from __future__ import annotations

from repro.obs.profiler import Profiler, component_kind
from repro.sim.engine import Event, Simulator, Timeout


def _run_workload(sim: Simulator) -> None:
    def worker(n: int):
        for _ in range(n):
            yield Timeout(5.0)

    def waiter(ev: Event):
        yield ev

    ev = sim.event("go")
    sim.process(worker(3), name="send[host1]")
    sim.process(worker(2), name="sdma[host1]")
    sim.process(waiter(ev), name="recv[host2]")
    sim.schedule(40.0, lambda: ev.succeed())
    sim.run(until=100.0)


class TestAttribution:
    def test_component_counts_sum_to_total(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        _run_workload(sim)
        assert prof.events_total > 0
        assert sum(prof.events_by_component.values()) == prof.events_total

    def test_process_names_attributed(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        _run_workload(sim)
        assert "send[host1]" in prof.events_by_component
        assert "sdma[host1]" in prof.events_by_component
        assert "recv[host2]" in prof.events_by_component
        # Start + 3 timeouts + StopIteration-finishing step: the exact
        # split is engine detail, but each worker stepped >= its loop.
        assert prof.events_by_component["send[host1]"] >= 3

    def test_unattributed_dispatches_land_in_engine(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        sim.schedule(1.0, lambda: None)  # steps no process
        sim.run()
        assert prof.events_by_component.get("engine", 0) >= 1

    def test_wall_time_accumulates(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        _run_workload(sim)
        assert prof.wall_ns_total > 0
        total = sum(prof.wall_ns_by_component.values())
        assert total == prof.wall_ns_total

    def test_event_counts_deterministic_across_runs(self):
        counts = []
        for _ in range(2):
            sim = Simulator()
            prof = Profiler().install(sim)
            _run_workload(sim)
            counts.append(dict(prof.events_by_component))
        assert counts[0] == counts[1]


class TestAggregation:
    def test_by_kind_collapses_instances(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        _run_workload(sim)
        kinds = prof.by_kind()
        assert "send" in kinds and "sdma" in kinds
        assert sum(int(e["events"]) for e in kinds.values()) == \
            prof.events_total

    def test_component_kind_helper(self):
        assert component_kind("send[host1]") == "send"
        assert component_kind("engine") == "engine"
        assert component_kind("pingpong") == "pingpong"

    def test_top_sorted_by_wall_time(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        _run_workload(sim)
        rows = prof.top(3)
        assert len(rows) <= 3
        walls = [w for _c, _n, w in rows]
        assert walls == sorted(walls, reverse=True)


class TestLifecycle:
    def test_uninstall_detaches(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        assert sim.profiler is prof
        prof.uninstall()
        assert sim.profiler is None
        _run_workload(sim)  # runs fine unprofiled
        assert prof.events_total == 0

    def test_run_until_event_also_profiled(self):
        sim = Simulator()
        prof = Profiler().install(sim)
        ev = sim.event("done")

        def proc():
            yield Timeout(3.0)
            ev.succeed()

        sim.process(proc(), name="p[x]")
        sim.run_until_event(ev)
        assert prof.events_total > 0
        assert "p[x]" in prof.events_by_component
