"""EXP-A6: in-transit host selection policy under load.

The ITB router must pick a host at every violation switch.  With
multiple hosts per switch, the ``first_host`` policy funnels every
in-transit packet of a switch through one NIC, while ``round_robin``
spreads the ejection/re-injection work across them.  Under load the
spread relieves the transit NIC's send engine — the simplest of the
load-aware placements the paper's follow-up work motivates.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.workloads import drive_traffic
from repro.routing.itb import ItbRouter, first_host_policy, round_robin_policy
from repro.routing.spanning_tree import build_orientation
from repro.routing.tables import build_route_tables
from repro.topology.generators import random_irregular


def build_with_policy(policy_factory, n_switches=10, seed=9,
                      hosts_per_switch=3):
    """Network whose ITB routes were computed with a specific policy."""
    topo = random_irregular(n_switches, seed=seed,
                            hosts_per_switch=hosts_per_switch)
    cfg = NetworkConfig(
        firmware="itb", routing="updown",  # tables replaced below
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        recv_buffer_kind="pool", pool_bytes=1024 * 1024, reliable=False,
    )
    net = build_network(topo, config=cfg)
    orientation = build_orientation(topo)
    router = ItbRouter(topo, orientation, host_policy=policy_factory())
    tables = build_route_tables(sorted(net.gm_hosts), router)
    for host, table in tables.items():
        net.nics[host].route_table = table
    return net, router


class TestPolicySpread:
    def test_round_robin_distributes_transit_duty(self):
        """Across all pairs, round-robin uses strictly more distinct
        in-transit hosts than first-host (when any switch with >1 host
        serves ITBs)."""
        distinct = {}
        for name, factory in (("first", lambda: first_host_policy),
                              ("rr", round_robin_policy)):
            _net, router = build_with_policy(factory)
            hosts_used = set()
            all_hosts = sorted(router.topo.hosts())
            for s, d in itertools.permutations(all_hosts, 2):
                hosts_used.update(router.itb_route(s, d).itb_hosts)
            distinct[name] = len(hosts_used)
        if distinct["first"] == 0:
            pytest.skip("topology needed no ITBs")
        assert distinct["rr"] >= distinct["first"]

    def test_route_lengths_identical_across_policies(self):
        """Policy affects WHICH host, never the path shape."""
        _n1, r_first = build_with_policy(lambda: first_host_policy)
        _n2, r_rr = build_with_policy(round_robin_policy)
        hosts = sorted(r_first.topo.hosts())
        for s, d in itertools.permutations(hosts[:6], 2):
            a = r_first.itb_route(s, d)
            b = r_rr.itb_route(s, d)
            assert a.n_switches == b.n_switches
            assert a.n_itbs == b.n_itbs


class TestPolicyUnderLoad:
    def test_round_robin_at_least_matches_first_host(self):
        """Accepted throughput with round-robin placement is not worse
        than funneling all transit duty through one NIC per switch."""
        accepted = {}
        for name, factory in (("first", lambda: first_host_policy),
                              ("rr", round_robin_policy)):
            net, _router = build_with_policy(factory)
            stats = drive_traffic(net, rate_bytes_per_ns_per_host=0.05,
                                  packet_size=512, duration_ns=120_000,
                                  warmup_ns=20_000)
            accepted[name] = stats.accepted_bytes_per_ns_per_host
        assert accepted["rr"] >= accepted["first"] * 0.97
