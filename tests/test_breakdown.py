"""Tests for the latency-breakdown instrumentation."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.breakdown import measure_breakdown
from repro.harness.paths import fig6_paths


def build(trace=True):
    cfg = NetworkConfig(
        firmware="itb", routing="updown", trace=trace,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network("fig6", config=cfg)


class TestPlainPath:
    def test_components_sum_to_total(self):
        net = build()
        b = measure_breakdown(net, "host1", "host2", size=512)
        parts = (b.host_and_sdma_ns + b.network_ns + b.recv_and_rdma_ns)
        assert parts == pytest.approx(b.total_ns)
        assert b.n_itbs == 0 and b.itb_forward_ns == 0.0

    def test_host_component_matches_constants(self):
        """Breakdown sends at the firmware boundary, so the pre-wire
        component is SDMA (DMA setup + PCI) + the Send machine."""
        t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
        net = build()
        b = measure_breakdown(net, "host1", "host2", size=256)
        expected = (t.dma_setup_ns
                    + t.pci_time(256 + 5)  # payload + header bytes
                    + t.cycles(t.mcp_send_cycles))
        assert b.host_and_sdma_ns == pytest.approx(expected, rel=0.02)

    def test_wire_dominates_large_messages(self):
        net = build()
        b = measure_breakdown(net, "host1", "host2", size=4096)
        assert b.network_ns > 0.5 * b.total_ns

    def test_rows_percentages(self):
        net = build()
        b = measure_breakdown(net, "host1", "host2", size=64)
        rows = b.rows()
        assert len(rows) == 4
        assert sum(pct for _n, _ns, pct in rows) == pytest.approx(100.0)


class TestItbPath:
    def test_forward_component_observed(self):
        net = build()
        paths = fig6_paths(net.topo, net.roles)
        b = measure_breakdown(net, "host1", "host2", size=512,
                              route=paths.itb5)
        assert b.n_itbs == 1
        # Observed forward time = early-recv + program-DMA firmware cost.
        t = net.config.timings
        assert b.itb_forward_ns == pytest.approx(t.itb_forward_ns, rel=0.01)

    def test_forward_without_trace_falls_back_to_constant(self):
        net = build(trace=False)
        paths = fig6_paths(net.topo, net.roles)
        b = measure_breakdown(net, "host1", "host2", size=512,
                              route=paths.itb5)
        assert b.itb_forward_ns == pytest.approx(
            net.config.timings.itb_forward_ns)

    def test_itb_included_in_network_time(self):
        net = build()
        paths = fig6_paths(net.topo, net.roles)
        b = measure_breakdown(net, "host1", "host2", size=512,
                              route=paths.itb5)
        assert b.network_ns > b.itb_forward_ns
