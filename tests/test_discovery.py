"""Tests for the GM mapper's network-discovery phase."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.discovery import DiscoveryError, discover_network
from repro.topology.generators import random_irregular


def build(topo_or_name, **kw):
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network(topo_or_name, config=cfg)


class TestFig6Discovery:
    @pytest.fixture(scope="class")
    def result(self):
        net = build("fig6")
        return net, discover_network(net, net.roles["host1"])

    def test_finds_both_switches(self, result):
        _, m = result
        assert m.n_switches == 2

    def test_finds_all_hosts(self, result):
        net, m = result
        assert m.hosts == sorted(net.topo.hosts())

    def test_host_attachment_correct(self, result):
        net, m = result
        for host, (label, _port) in m.host_attach.items():
            # Labels are discovery-ordered; sw0 is host1's own switch.
            expected = "sw0" if net.topo.switch_of(host) == \
                net.roles["sw1"] else "sw1"
            assert label == expected

    def test_loopback_visible_as_self_adjacency(self, result):
        """The loopback cable on switch 2 shows up as sw1 <-> sw1."""
        _, m = result
        adj = m.switch_adjacency()
        assert "sw1" in adj["sw1"]

    def test_inter_switch_cables_counted(self, result):
        """Three parallel cables = three ports leading to the peer."""
        _, m = result
        to_peer = sum(
            1 for v in m.switch_ports["sw0"].values()
            if v is not None and v == ("switch", "sw1")
        )
        assert to_peer == 3

    def test_discovery_takes_simulated_time(self, result):
        _, m = result
        assert m.elapsed_ns > 0
        assert m.probes_sent == 16  # 2 switches x 8 ports

    def test_scouts_crossed_the_wire(self, result):
        """Host probes run real packets: NIC counters moved."""
        net, m = result
        assert net.nic("host1").stats.packets_sent >= 2  # itb + host2 scouts


class TestRandomDiscovery:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_reconstructed_map_isomorphic(self, seed):
        topo = random_irregular(6, seed=seed, hosts_per_switch=2)
        net = build(topo)
        mapper = sorted(net.gm_hosts)[0]
        m = discover_network(net, mapper)
        # Same switch count, same host set.
        assert m.n_switches == len(topo.switches())
        assert m.hosts == sorted(topo.hosts())
        # Degree multiset of the fabric matches.
        ours = sorted(m.degree(l) for l in m.switch_ports)
        truth = sorted(len(topo.switch_neighbors(s)) for s in topo.switches())
        assert ours == truth

    def test_probe_budget_enforced(self):
        topo = random_irregular(6, seed=3)
        net = build(topo)
        with pytest.raises(DiscoveryError):
            discover_network(net, sorted(net.gm_hosts)[0], max_probes=3)
