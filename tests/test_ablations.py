"""Tests for the ablation experiments (EXP-A1/A2/A3)."""

from __future__ import annotations

import pytest

from repro.harness.ablations import (
    run_ablation_buffer_pool,
    run_ablation_load,
    run_ablation_timing,
)


class TestBufferPoolAblation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_ablation_buffer_pool(
            n_senders=3, packets_per_sender=10,
            packet_size=1024, pool_bytes=3000,
        )

    def test_both_schemes_present(self, results):
        assert set(results) == {"fixed", "pool"}

    def test_fixed_buffers_never_lose_packets(self, results):
        fixed = results["fixed"]
        assert fixed.delivered == fixed.offered
        assert fixed.flushed == 0

    def test_fixed_buffers_exert_backpressure(self, results):
        assert results["fixed"].recv_blocked_ns > 0

    def test_pool_flushes_instead_of_blocking(self, results):
        pool = results["pool"]
        assert pool.flushed > 0
        assert pool.delivered == pool.offered - pool.flushed
        assert pool.recv_blocked_ns == 0.0

    def test_pool_keeps_the_wire_moving(self, results):
        """Delivered packets see lower latency under the pool because
        the wire never stalls behind a full transit buffer."""
        assert results["pool"].mean_latency_ns <= \
            results["fixed"].mean_latency_ns


class TestTimingAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablation_timing(size=64, iterations=5)

    def test_three_regimes(self, rows):
        assert len(rows) == 3
        labels = [r.label for r in rows]
        assert any("2,3" in l or "[2,3]" in l for l in labels)

    def test_assumed_regime_near_half_microsecond(self, rows):
        """The [2,3] assumption (275 + 200 ns) lands near 0.5 us."""
        assumed = rows[0]
        assert 400.0 <= assumed.overhead_ns <= 650.0

    def test_paper_regime_near_1300ns(self, rows):
        paper = rows[1]
        assert 1_100.0 <= paper.overhead_ns <= 1_600.0

    def test_overhead_monotone_in_firmware_cost(self, rows):
        by_cost = sorted(rows, key=lambda r: r.firmware_cost_ns)
        overheads = [r.overhead_ns for r in by_cost]
        assert overheads == sorted(overheads)


class TestLoadAblation:
    def test_marginal_overhead_shrinks_under_load(self):
        """The paper's argument: under load the ITB delay hides behind
        queueing the packet would suffer anyway."""
        res = run_ablation_load(size=256, iterations=12,
                                background_gap_ns=9_000.0)
        assert res.overhead_unloaded_ns > 1_000.0
        assert res.marginal_fraction < 1.5  # sanity: same order
        # The headline claim: loaded marginal cost does not exceed the
        # unloaded cost by more than noise, and typically shrinks.
        assert res.overhead_loaded_ns < res.overhead_unloaded_ns * 1.25
