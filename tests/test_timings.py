"""Tests for the timing model."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.topology.graph import PortKind


class TestDerivedValues:
    def test_cycles(self):
        t = Timings()
        assert t.cycles(1) == pytest.approx(15.15)
        assert t.cycles(10) == pytest.approx(151.5)

    def test_wire_time_matches_link_rate(self):
        t = Timings()
        # 160 MB/s <=> 6.25 ns/byte <=> 1 KB in 6.4 us.
        assert t.wire_time(1024) == pytest.approx(6400.0)

    def test_itb_check_near_paper_value(self):
        """The added receive-path instructions cost ~125 ns."""
        assert 110.0 <= Timings().itb_check_ns <= 140.0

    def test_itb_forward_near_paper_value(self):
        """Detection + re-injection programming lands near 1.3 us."""
        assert 1_200.0 <= Timings().itb_forward_ns <= 1_400.0

    def test_fall_through_table_complete(self):
        t = Timings()
        for a in PortKind:
            for b in PortKind:
                assert t.fall_through(a, b) > 0

    def test_fall_through_symmetric_mixed(self):
        t = Timings()
        assert t.fall_through(PortKind.SAN, PortKind.LAN) == \
            t.fall_through(PortKind.LAN, PortKind.SAN)

    def test_san_faster_than_lan(self):
        t = Timings()
        assert t.fall_through(PortKind.SAN, PortKind.SAN) < \
            t.fall_through(PortKind.LAN, PortKind.LAN)

    def test_propagation(self):
        t = Timings()
        assert t.propagation(10.0) == pytest.approx(43.0)

    def test_pci_faster_than_wire(self):
        """64/66 PCI outruns the 160 MB/s link, as on the real cards."""
        t = Timings()
        assert t.pci_byte_ns < t.link_byte_ns


class TestOverrides:
    def test_with_overrides_creates_variant(self):
        base = Timings()
        variant = base.with_overrides(itb_check_cycles=16)
        assert variant.itb_check_cycles == 16
        assert base.itb_check_cycles == 8  # original untouched

    def test_frozen(self):
        t = Timings()
        with pytest.raises(Exception):
            t.lanai_cycle_ns = 1.0  # type: ignore[misc]

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            Timings().with_overrides(warp_factor=9)
