"""Integration + acceptance tests for the unified telemetry subsystem.

Covers the ISSUE-1 acceptance criteria: the Fig. 8 workload's ITB
buffer-occupancy gauge is nonzero exactly while an in-transit packet
is buffered, the engine profiler's per-component counts sum to its
total, and ``repro obs`` produces Prometheus text, JSON, CSV, and a
chrome trace with counter tracks.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.obs.attach import instrument_network
from repro.obs.exporters import parse_prometheus_text, parse_series_csv
from repro.obs.run import export_all, run_obs


def _instrumented_fig8_run(interval_ns: float = 100.0):
    """One packet over the Fig. 8 ITB path with full telemetry on."""
    cfg = NetworkConfig(
        firmware="itb", routing="updown", trace=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    telemetry = instrument_network(
        net, sample_interval_ns=interval_ns, profile=True)
    paths = fig6_paths(net.topo, net.roles)
    done = net.sim.event("one")
    net.nics[net.roles["host1"]].firmware.host_send(
        dst=net.roles["host2"], payload_len=256, gm={"last": True},
        on_delivered=lambda tp: done.succeed(tp), route=paths.itb5,
    )
    tp = net.sim.run_until_event(done)
    telemetry.stop()
    return net, telemetry, tp


class TestWiring:
    def test_nic_stats_published_through_registry(self, fig6_routes):
        net, telemetry, _tp = _instrumented_fig8_run()
        reg = telemetry.registry
        for host, nic in net.nics.items():
            comp = f"nic[{nic.name}]"
            assert reg.get("nic_packets_sent", component=comp).value == \
                nic.stats.packets_sent
            assert reg.get("nic_packets_forwarded", component=comp).value == \
                nic.stats.packets_forwarded
        itb = f"nic[{net.topo.node_name(net.roles['itb'])}]"
        assert reg.get("nic_packets_forwarded", component=itb).value == 1

    def test_fabric_usage_published_through_registry(self):
        net, telemetry, _tp = _instrumented_fig8_run()
        reg = telemetry.registry
        usage = telemetry.usage
        assert usage is not None
        total_packets = sum(
            reg.get("fabric_channel_packets_total",
                    component=f"channel[{c.from_node}->{c.to_node}]",
                    labels={"link": f"{c.key[0]}:{c.key[1]}"}).value
            for c in usage.channels.values()
        )
        assert total_packets == sum(c.packets for c in usage.channels.values())
        assert total_packets >= 1  # the ITB path crosses the fabric
        assert 0.0 < reg.get("fabric_jain_fairness").value <= 1.0

    def test_firmware_emits_counted(self):
        net, telemetry, _tp = _instrumented_fig8_run()
        reg = telemetry.registry
        itb = f"nic[{net.topo.node_name(net.roles['itb'])}]"
        early = reg.get("nic_mcp_events_total", component=itb,
                        labels={"kind": "early_recv"})
        assert early.value == len(
            net.trace.records(kind="early_recv", component=itb))
        assert early.value >= 1


class TestFig8OccupancyAcceptance:
    def test_itb_occupancy_nonzero_exactly_while_buffered(self):
        net, telemetry, _tp = _instrumented_fig8_run(interval_ns=100.0)
        itb = f"nic[{net.topo.node_name(net.roles['itb'])}]"
        series = telemetry.sampler.get(
            "nic_recv_buffer_occupancy_bytes", component=itb)
        early = net.trace.first("early_recv")
        release = net.trace.last("itb_buffer_release")
        assert early is not None and release is not None
        assert early.component == itb and release.component == itb
        t_claim, t_free = early.time, release.time
        assert t_free > t_claim
        nonzero = [p for p in series.points if p.value > 0]
        assert nonzero, "expected samples while the ITB packet was buffered"
        # Nonzero exactly while buffered: every nonzero sample falls
        # inside [claim, release], every sample outside is zero.
        for p in nonzero:
            assert t_claim <= p.t_ns <= t_free
        for p in series.points:
            if p.t_ns < t_claim or p.t_ns > t_free:
                assert p.value == 0.0

    def test_occupancy_matches_wire_size(self):
        net, telemetry, _tp = _instrumented_fig8_run(interval_ns=50.0)
        itb = f"nic[{net.topo.node_name(net.roles['itb'])}]"
        series = telemetry.sampler.get(
            "nic_recv_buffer_occupancy_bytes", component=itb)
        peak = max(series.values())
        # One buffered packet: payload + headers, well under 2 packets.
        assert 256 <= peak < 2 * 256 + 64


class TestProfilerAcceptance:
    def test_component_counts_sum_to_engine_total(self):
        _net, telemetry, _tp = _instrumented_fig8_run()
        prof = telemetry.profiler
        assert prof.events_total > 0
        assert sum(prof.events_by_component.values()) == prof.events_total
        # The MCP state machines show up by name.
        kinds = prof.by_kind()
        assert "sdma" in kinds and "send" in kinds


class TestRunObs:
    @pytest.fixture(scope="class")
    def obs_result(self):
        return run_obs(topology="fig6", load=0.02, duration_ns=30_000.0,
                       interval_ns=500.0)

    def test_traffic_flows_and_latency_summarized(self, obs_result):
        assert obs_result.traffic.offered_packets > 0
        assert obs_result.latency.n == len(obs_result.traffic.latencies_ns)

    def test_latency_histogram_populated(self, obs_result):
        hist = obs_result.registry.get("packet_latency_ns")
        assert hist.count == obs_result.latency.n

    def test_export_all_round_trips(self, obs_result, tmp_path):
        paths = export_all(obs_result, tmp_path)
        assert set(paths) == {"prometheus", "json", "csv", "chrome_trace"}

        parsed = parse_prometheus_text(paths["prometheus"].read_text())
        sent = sum(v for (name, _labels), v in parsed.items()
                   if name == "nic_packets_sent")
        assert sent == obs_result.net.total_stats()["packets_sent"]

        doc = json.loads(paths["json"].read_text())
        assert doc["format"] == "repro-telemetry/1"
        assert doc["series"] and doc["profile"]["events_total"] > 0

        rows = parse_series_csv(paths["csv"].read_text())
        assert rows and all(isinstance(r[3], float) for r in rows)

        trace = json.loads(paths["chrome_trace"].read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "C" in phases and "i" in phases

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            run_obs(topology="hypercube")


class TestCliObs:
    def test_obs_subcommand_smoke(self, tmp_path, capsys):
        rc = main(["obs", "--topology", "fig6", "--duration", "30",
                   "--interval", "500", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro obs" in out
        assert "engine profile" in out
        assert "wrote prometheus" in out
        assert (tmp_path / "metrics.prom").exists()
        assert (tmp_path / "trace.json").exists()

    def test_obs_random_topology_smoke(self, capsys):
        rc = main(["obs", "--topology", "random", "--switches", "4",
                   "--hosts-per-switch", "1", "--duration", "20"])
        assert rc == 0
        assert "telemetry" in capsys.readouterr().out
