"""Tests for the one-shot claim validation."""

from __future__ import annotations

import pytest

from repro.harness.validation import ValidationReport, validate_claims


class TestValidationReport:
    def test_add_and_verdicts(self):
        report = ValidationReport()
        report.add("f7.mean_overhead_ns", 125.0)
        report.add("f7.mean_overhead_ns", 999.0)
        assert report.n_checked == 2
        assert not report.all_hold
        rendered = report.render()
        assert "yes" in rendered and "NO" in rendered

    def test_unknown_claim_rejected(self):
        with pytest.raises(KeyError):
            ValidationReport().add("nope", 1.0)


class TestValidateClaims:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_claims(iterations=5, sizes=(16, 1024, 4096))

    def test_all_quick_claims_hold(self, report):
        failing = [c.key for (c, _m, ok) in report.entries if not ok]
        assert report.all_hold, f"violated: {failing}"

    def test_covers_both_figures(self, report):
        keys = {c.key for (c, _m, _ok) in report.entries}
        assert any(k.startswith("f7.") for k in keys)
        assert any(k.startswith("f8.") for k in keys)
        assert any(k.startswith("method.") for k in keys)

    def test_throughput_excluded_by_default(self, report):
        keys = {c.key for (c, _m, _ok) in report.entries}
        assert "m1.throughput_ratio_64sw" not in keys


class TestCliValidate:
    def test_exit_code_zero_when_all_hold(self, capsys):
        from repro.cli import main

        rc = main(["validate", "--iterations", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ALL HOLD" in out
