"""Tests for the gm_allsize harness and structured tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.allsize import PingPongResult, allsize_sweep
from repro.sim.trace import Trace


def quiet_net(**kw):
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network("fig6", config=cfg)


class TestPingPong:
    def test_deterministic_without_jitter(self):
        res = [quiet_net().ping_pong("host1", "host2", size=64, iterations=5)
               for _ in range(2)]
        assert np.array_equal(res[0].half_rtt_ns, res[1].half_rtt_ns)
        # Steady state: all iterations identical with zero noise.
        assert res[0].std_ns == pytest.approx(0.0, abs=1e-9)

    def test_stats_helpers(self):
        r = PingPongResult(size=8, iterations=3,
                           half_rtt_ns=np.array([1000.0, 2000.0, 3000.0]))
        assert r.mean_ns == 2000.0
        assert r.min_ns == 1000.0 and r.max_ns == 3000.0
        assert r.mean_us == 2.0

    def test_iteration_count_respected(self):
        res = quiet_net().ping_pong("host1", "host2", size=16,
                                    iterations=7, warmup=3)
        assert len(res.half_rtt_ns) == 7

    def test_jitter_produces_variance(self):
        cfg = NetworkConfig(firmware="itb", routing="updown", seed=5)
        net = build_network("fig6", config=cfg)
        res = net.ping_pong("host1", "host2", size=64, iterations=20)
        assert res.std_ns > 0

    def test_seed_reproducibility_with_jitter(self):
        def run():
            cfg = NetworkConfig(firmware="itb", routing="updown", seed=77)
            net = build_network("fig6", config=cfg)
            return net.ping_pong("host1", "host2", size=64, iterations=10)

        assert np.array_equal(run().half_rtt_ns, run().half_rtt_ns)

    def test_latency_monotone_in_size(self):
        sizes = (16, 256, 1024, 4096)
        means = [quiet_net().ping_pong("host1", "host2", size=s,
                                       iterations=3).mean_ns
                 for s in sizes]
        assert means == sorted(means)

    def test_allsize_sweep(self):
        def make(size):
            net = quiet_net()
            return net.sim, net.gm("host1"), net.gm("host2"), None, None

        results = allsize_sweep(make, sizes=(8, 64), iterations=3)
        assert [r.size for r in results] == [8, 64]
        assert all(len(r.half_rtt_ns) == 3 for r in results)


class TestTrace:
    def test_records_filterable(self):
        trace = Trace()
        trace.emit(1.0, "nic[a]", "inject", pid=1)
        trace.emit(2.0, "nic[b]", "deliver", pid=1)
        trace.emit(3.0, "nic[a]", "inject", pid=2)
        assert len(trace) == 3
        assert len(trace.records(kind="inject")) == 2
        assert len(trace.records(component="nic[b]")) == 1
        assert trace.first("inject").time == 1.0
        assert trace.last("inject").time == 3.0
        assert trace.first("nothing") is None
        picked = trace.records(predicate=lambda r: r.detail["pid"] == 2)
        assert len(picked) == 1

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.emit(1.0, "x", "y")
        assert len(trace) == 0

    def test_max_records_cap(self):
        trace = Trace(max_records=2)
        for i in range(5):
            trace.emit(float(i), "c", "k")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = Trace()
        trace.emit(1.0, "c", "k")
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0

    def test_network_trace_wired_through(self):
        cfg = NetworkConfig(
            firmware="itb", routing="updown", trace=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        net.ping_pong("host1", "host2", size=32, iterations=2)
        assert net.trace is not None
        assert net.trace.records(kind="inject")
        assert net.trace.records(kind="deliver")
