"""Tests for result persistence (JSON round-trips)."""

from __future__ import annotations

import json

import pytest

from repro.core.timings import Timings
from repro.exp import ExperimentSpec
from repro.harness.ablations import (AblationLoadResult, BufferPoolResult,
                                     BufferPoolStudyResult, TimingSweepResult,
                                     TimingSweepRow)
from repro.harness.apps import AppResult, AppsResult
from repro.harness.fig7 import run_fig7
from repro.harness.fig8 import run_fig8
from repro.harness.persist import (from_document, load_results, save_results,
                                   to_document)
from repro.harness.root_study import RootStudyResult, RootStudyRow
from repro.harness.throughput import run_throughput


@pytest.fixture(scope="module")
def small_results():
    t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
    return {
        "fig7": run_fig7(sizes=(16, 1024), iterations=3, timings=t),
        "fig8": run_fig8(sizes=(16, 1024), iterations=3, timings=t),
        "m1": run_throughput(n_switches=4, packet_size=256,
                             rates=(0.02,), duration_ns=40_000,
                             warmup_ns=5_000, hosts_per_switch=1),
    }


class TestRoundTrip:
    def test_fig7_round_trip(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"fig7": small_results["fig7"]})
        loaded = load_results(path)["fig7"]
        original = small_results["fig7"]
        assert loaded.iterations == original.iterations
        assert [(r.size, r.original_ns, r.modified_ns)
                for r in loaded.rows] == \
            [(r.size, r.original_ns, r.modified_ns) for r in original.rows]
        # Derived quantities survive the trip.
        assert loaded.mean_overhead_ns == pytest.approx(
            original.mean_overhead_ns)

    def test_fig8_round_trip(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"fig8": small_results["fig8"]})
        loaded = load_results(path)["fig8"]
        assert loaded.mean_overhead_ns == pytest.approx(
            small_results["fig8"].mean_overhead_ns)

    def test_throughput_round_trip(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"m1": small_results["m1"]})
        loaded = load_results(path)["m1"]
        original = small_results["m1"]
        assert loaded.n_switches == 4
        assert len(loaded.points) == 2  # 1 rate x 2 routings
        # Real ThroughputResult with working derived quantities.
        assert loaded.throughput_ratio == pytest.approx(
            original.throughput_ratio)
        assert [p.accepted for p in loaded.points] == \
            pytest.approx([p.accepted for p in original.points])

    def test_multiple_results_and_extra(self, small_results, tmp_path):
        path = save_results(
            tmp_path / "all.json",
            {"fig7": small_results["fig7"], "fig8": small_results["fig8"]},
            extra={"note": "quick run", "seed": 2001},
        )
        loaded = load_results(path)
        assert set(loaded) == {"fig7", "fig8", "extra"}
        assert loaded["extra"]["note"] == "quick run"

    def test_file_is_plain_json(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"fig7": small_results["fig7"]})
        blob = json.loads(path.read_text())
        assert blob["format_version"] == 2
        assert "fig7" in blob["results"]

    def test_spec_round_trip(self, small_results, tmp_path):
        spec = ExperimentSpec(experiment="fig7", sizes=(16, 1024),
                              iterations=3)
        path = save_results(tmp_path / "r.json",
                            {"fig7": small_results["fig7"]},
                            specs={"fig7": spec})
        loaded = load_results(path)
        assert loaded["specs"]["fig7"] == spec


class TestEveryKindRoundTrips:
    """The generic codec covers every registered result kind."""

    CASES = {
        "apps": AppsResult(results=[
            AppResult(kernel="ring", routing="updown", n_hosts=4,
                      iterations=2, message_size=512,
                      completion_ns=1000.0, messages=8),
            AppResult(kernel="ring", routing="itb", n_hosts=4,
                      iterations=2, message_size=512,
                      completion_ns=900.0, messages=8),
        ]),
        "root-study": RootStudyResult(rows=[
            RootStudyRow(root_label="optimal", root=3,
                         avg_updown_hops=1.9, avg_itb_hops=1.7,
                         avg_minimal_hops=1.7, pairs_with_itbs=4,
                         n_pairs=12),
        ]),
        "ablation-load": AblationLoadResult(
            size=256, overhead_unloaded_ns=1300.0,
            overhead_loaded_ns=120.0),
        "ablation-bufpool": BufferPoolStudyResult(results=[
            BufferPoolResult(kind="fixed", delivered=50, offered=60,
                             flushed=0, recv_blocked_ns=4000.0,
                             mean_latency_ns=2500.0),
            BufferPoolResult(kind="pool", delivered=58, offered=60,
                             flushed=2, recv_blocked_ns=0.0,
                             mean_latency_ns=1800.0),
        ]),
        "ablation-timing": TimingSweepResult(rows=[
            TimingSweepRow(label="assumed", early_recv_cycles=18,
                           program_dma_cycles=13, overhead_ns=500.0,
                           firmware_cost_ns=475.0),
        ]),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_round_trip(self, name, tmp_path):
        original = self.CASES[name]
        path = save_results(tmp_path / "r.json", {name: original})
        loaded = load_results(path)[name]
        assert loaded == original
        assert type(loaded) is type(original)

    def test_document_is_generic(self):
        doc = to_document(self.CASES["ablation-load"])
        rebuilt = from_document(AblationLoadResult, doc)
        assert rebuilt == self.CASES["ablation-load"]


class TestValidation:
    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_results(tmp_path / "r.json", {"bad": object()})

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "results": {}}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_old_format_rejected(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps({"format_version": 1, "results": {}}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({
            "format_version": 2,
            "results": {"x": {"kind": "martian", "data": {}}},
        }))
        with pytest.raises(ValueError):
            load_results(path)
