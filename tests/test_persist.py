"""Tests for result persistence (JSON round-trips)."""

from __future__ import annotations

import json

import pytest

from repro.core.timings import Timings
from repro.harness.fig7 import run_fig7
from repro.harness.fig8 import run_fig8
from repro.harness.persist import load_results, save_results
from repro.harness.throughput import run_throughput


@pytest.fixture(scope="module")
def small_results():
    t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
    return {
        "fig7": run_fig7(sizes=(16, 1024), iterations=3, timings=t),
        "fig8": run_fig8(sizes=(16, 1024), iterations=3, timings=t),
        "m1": run_throughput(n_switches=4, packet_size=256,
                             rates=(0.02,), duration_ns=40_000,
                             warmup_ns=5_000, hosts_per_switch=1),
    }


class TestRoundTrip:
    def test_fig7_round_trip(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"fig7": small_results["fig7"]})
        loaded = load_results(path)["fig7"]
        original = small_results["fig7"]
        assert loaded.iterations == original.iterations
        assert [(r.size, r.original_ns, r.modified_ns)
                for r in loaded.rows] == \
            [(r.size, r.original_ns, r.modified_ns) for r in original.rows]
        # Derived quantities survive the trip.
        assert loaded.mean_overhead_ns == pytest.approx(
            original.mean_overhead_ns)

    def test_fig8_round_trip(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"fig8": small_results["fig8"]})
        loaded = load_results(path)["fig8"]
        assert loaded.mean_overhead_ns == pytest.approx(
            small_results["fig8"].mean_overhead_ns)

    def test_throughput_summary(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"m1": small_results["m1"]})
        loaded = load_results(path)["m1"]
        assert loaded["kind"] == "throughput"
        assert loaded["n_switches"] == 4
        assert len(loaded["points"]) == 2  # 1 rate x 2 routings

    def test_multiple_results_and_extra(self, small_results, tmp_path):
        path = save_results(
            tmp_path / "all.json",
            {"fig7": small_results["fig7"], "fig8": small_results["fig8"]},
            extra={"note": "quick run", "seed": 2001},
        )
        loaded = load_results(path)
        assert set(loaded) == {"fig7", "fig8", "extra"}
        assert loaded["extra"]["note"] == "quick run"

    def test_file_is_plain_json(self, small_results, tmp_path):
        path = save_results(tmp_path / "r.json",
                            {"fig7": small_results["fig7"]})
        blob = json.loads(path.read_text())
        assert blob["format_version"] == 1
        assert "fig7" in blob["results"]


class TestValidation:
    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_results(tmp_path / "r.json", {"bad": object()})

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "results": {}}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "results": {"x": {"kind": "martian"}},
        }))
        with pytest.raises(ValueError):
            load_results(path)
