"""Tests for the CLI and the ASCII plotter."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.harness.ascii_plot import line_plot


class TestLinePlot:
    def test_basic_render(self):
        out = line_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20,
                        height=5, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "o" in out  # first-series marker
        assert "o=a" in out

    def test_two_series_distinct_markers(self):
        out = line_plot([1, 2], {"ud": [1.0, 2.0], "itb": [2.0, 3.0]})
        assert "o=ud" in out and "x=itb" in out

    def test_log_x(self):
        out = line_plot([1, 10, 100, 1000], {"s": [1, 2, 3, 4]}, logx=True)
        # On a log axis the points are evenly spaced: the marker
        # columns of consecutive points differ by a constant.
        rows = [l for l in out.splitlines() if "o" in l and "|" in l]
        cols = sorted(l.index("o") for l in rows)
        gaps = [b - a for a, b in zip(cols, cols[1:])]
        assert max(gaps) - min(gaps) <= 2

    def test_constant_series_ok(self):
        out = line_plot([1, 2], {"flat": [5.0, 5.0]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([], {})
        with pytest.raises(ValueError):
            line_plot([1, 2], {"bad": [1.0]})
        with pytest.raises(ValueError):
            line_plot([0, 1], {"s": [1, 2]}, logx=True)
        with pytest.raises(ValueError):
            line_plot([1], {c: [1.0] for c in "abcdefg"})


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "deadlock-free" in out

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "paper ~125 ns" in out

    def test_fig8_with_plot(self, capsys):
        assert main(["fig8", "--iterations", "3", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "UD-ITB" in out
        assert "o=UD" in out  # the chart legend

    def test_throughput_runs(self, capsys):
        assert main([
            "throughput", "--switches", "4", "--rates", "0.02",
            "--duration", "30", "--hosts-per-switch", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "peak ratio" in out

    def test_discover_runs(self, capsys):
        assert main(["discover", "--topology", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "switches discovered" in out
