"""EXP-F8 harness tests: the Figure 8 reproduction must hold its shape."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.harness.fig8 import Fig8Result, Fig8Row, run_fig8

SIZES = (16, 256, 4096)


@pytest.fixture(scope="module")
def fig8() -> Fig8Result:
    t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
    return run_fig8(sizes=SIZES, iterations=10, timings=t)


class TestFig8Shape:
    def test_overhead_near_1300ns(self, fig8):
        """Paper: ~1.3 us per ITB."""
        assert 1_100.0 <= fig8.mean_overhead_ns <= 1_600.0

    def test_overhead_size_independent(self, fig8):
        """The per-ITB cost is a header-time cost: it must not grow
        with message length (cut-through re-injection)."""
        overheads = [r.overhead_ns for r in fig8.rows]
        assert max(overheads) - min(overheads) < 100.0

    def test_overhead_exceeds_prior_estimate(self, fig8):
        """Paper: the measured 1.3 us is far above the ~0.5 us assumed
        in the earlier simulation studies [2,3]."""
        assert fig8.mean_overhead_ns > 500.0

    def test_firmware_cost_is_the_dominant_component(self, fig8):
        """Detection + DMA programming accounts for most of the
        overhead; wire effects (extra NIC cable, longer header) are
        second order."""
        fw = Timings().itb_forward_ns
        assert fig8.mean_overhead_ns >= fw
        assert fig8.mean_overhead_ns - fw < 300.0

    def test_itb_path_always_slower(self, fig8):
        for row in fig8.rows:
            assert row.ud_itb_ns > row.ud_ns

    def test_relative_overhead_decreases_with_size(self, fig8):
        rels = [r.relative_pct for r in fig8.rows]
        assert rels == sorted(rels, reverse=True)

    def test_relative_range_matches_paper(self, fig8):
        """Paper: ~10 % short, ~3 % long."""
        assert 5.0 <= fig8.relative_short_pct <= 16.0
        assert fig8.relative_long_pct <= 4.0


class TestRowMath:
    def test_overhead_doubling_protocol(self):
        """Half-RTT difference x 2, per the paper's measurement note."""
        row = Fig8Row(size=8, ud_ns=10_000.0, ud_itb_ns=10_650.0)
        assert row.overhead_ns == pytest.approx(1_300.0)
        assert row.one_way_itb_ns == pytest.approx(11_300.0)
        assert row.relative_pct == pytest.approx(100 * 1300.0 / 11300.0)
