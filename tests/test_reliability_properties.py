"""Property tests of the GM reliability layer.

For arbitrary seeded loss/corruption rates, traffic mixes, and fault
schedules, the protocol invariants must hold:

* every accepted message is delivered **exactly once and in order**,
  or its completion event fails with ``GmSendError`` once the
  retransmission budget is exhausted — nothing is ever silently lost
  or duplicated,
* every send completion resolves (no wedged simulation),
* at quiesce no receive/ITB buffer byte and no fabric channel is
  still held (no leak).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.host import GmSendError
from repro.network.faults import FaultEvent, FaultPlan, install_fault_plan
from repro.sim.engine import Timeout


def _interswitch_links(net):
    sw1, sw2 = net.roles["sw1"], net.roles["sw2"]
    return sorted(
        link.link_id for link in net.topo.links
        if {link.node_a, link.node_b} == {sw1, sw2})


def _events(net, schedule: str) -> tuple:
    inter = _interswitch_links(net)
    if schedule == "none":
        return ()
    if schedule == "repairable":
        return (
            FaultEvent(kind="link-down", target=inter[0],
                       at_ns=50_000.0, repair_ns=200_000.0),
            FaultEvent(kind="host-down", target=net.roles["itb"],
                       at_ns=120_000.0, repair_ns=150_000.0),
        )
    # "partition": every inter-switch cable dies forever.
    return tuple(
        FaultEvent(kind="link-down", target=link_id, at_ns=50_000.0)
        for link_id in inter)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(
    loss=st.sampled_from([0.0, 0.05, 0.15, 0.3]),
    corrupt=st.sampled_from([0.0, 0.1]),
    seed=st.integers(min_value=0, max_value=30),
    n_ab=st.integers(min_value=1, max_value=5),
    n_ba=st.integers(min_value=0, max_value=4),
    size=st.sampled_from([64, 2048, 9000]),
    buffers=st.sampled_from(["fixed", "pool"]),
    schedule=st.sampled_from(["none", "repairable", "partition"]),
)
def test_exactly_once_in_order_or_graceful_failure(
        loss, corrupt, seed, n_ab, n_ba, size, buffers, schedule):
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=True, seed=seed,
        recv_buffer_kind=buffers,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    plan = FaultPlan(loss_probability=loss, corrupt_probability=corrupt,
                     seed=seed, events=_events(net, schedule))
    install_fault_plan(net, plan)
    sim = net.sim
    a, b = net.gm("host1"), net.gm("host2")
    if schedule == "partition":
        # A permanent partition must exhaust the budget quickly.
        for gm in (a, b):
            gm.max_retries = 4
            gm.resend_timeout_ns = 50_000.0
    recv = {a.host: [], b.host: []}
    outcome = {a.host: {}, b.host: {}}

    def receiver(gm):
        while True:
            msg = yield gm.receive()
            recv[gm.host].append(msg.tag)

    def waiter(done, src, tag):
        try:
            yield done
            outcome[src][tag] = "ok"
        except GmSendError:
            outcome[src][tag] = "failed"

    def sender(gm, dst, n):
        for i in range(n):
            sim.process(waiter(gm.send(dst, size, tag=i), gm.host, i),
                        name="wait")
            yield Timeout(25_000.0)

    sim.process(receiver(a), name="rx-a")
    sim.process(receiver(b), name="rx-b")
    sim.process(sender(a, b.host, n_ab), name="tx-a")
    sim.process(sender(b, a.host, n_ba), name="tx-b")
    sim.run(until=200_000_000)

    for src, dst, n in ((a.host, b.host, n_ab), (b.host, a.host, n_ba)):
        got = recv[dst]
        # Every send resolved: completed or failed, never in limbo.
        assert sorted(outcome[src]) == list(range(n))
        # Exactly once: no duplicate delivery.
        assert len(got) == len(set(got))
        # In order: the delivered tags are an order-preserving
        # subsequence of the send order 0..n-1.
        assert got == sorted(got)
        # A completed send was certainly delivered (ack follows the
        # in-order delivery); a failed one may or may not have been.
        completed = {t for t, o in outcome[src].items() if o == "ok"}
        assert completed <= set(got)

    # No leak at quiesce: every buffer byte returned, every channel free.
    for _host, nic in net.nics.items():
        assert nic.recv_buffers.occupancy_bytes == 0
        assert nic.recv_buffers.n_packets == 0
    for ch in net.fabric.channels():
        assert not ch.resource.in_use
