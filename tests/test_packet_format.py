"""Tests for the byte-level packet formats (paper Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcp.packet_format import (
    CRC_LEN,
    ITB_HEADER_LEN,
    TYPE_GM,
    TYPE_IP,
    TYPE_ITB,
    TYPE_LEN,
    PacketFormatError,
    PacketImage,
    decode_header,
    encode_packet,
)
from repro.routing.routes import ItbRoute, SourceRoute


def plain_route(n_ports: int = 3) -> SourceRoute:
    return SourceRoute(src=100, dst=101, ports=tuple(range(n_ports)),
                       switch_path=tuple(range(n_ports)))


def two_segment_route() -> ItbRoute:
    seg1 = SourceRoute(src=100, dst=102, ports=(1, 2), switch_path=(0, 1))
    seg2 = SourceRoute(src=102, dst=101, ports=(3,), switch_path=(1,))
    return ItbRoute((seg1, seg2))


class TestOriginalFormat:
    def test_layout(self):
        """Fig 3a: path bytes | type | payload | CRC."""
        img = encode_packet(plain_route(3), b"hello")
        assert len(img.data) == 3 + TYPE_LEN + 5 + CRC_LEN
        assert img.leading_is_route_byte()

    def test_route_byte_stripping(self):
        img = encode_packet(plain_route(3), b"xy")
        for expected_port in (0, 1, 2):
            port, img = img.strip_route_byte()
            assert port == expected_port
        assert not img.leading_is_route_byte()
        assert img.leading_type() == TYPE_GM

    def test_payload_roundtrip(self):
        payload = bytes(range(64))
        img = encode_packet(plain_route(2), payload)
        _, img = img.strip_route_byte()
        _, img = img.strip_route_byte()
        assert img.payload() == payload

    def test_length_only_payload(self):
        img = encode_packet(plain_route(1), 100)
        assert img.payload_len == 100
        assert len(img.data) == 1 + TYPE_LEN + 100 + CRC_LEN

    def test_crc_validates(self):
        img = encode_packet(plain_route(2), b"data!")
        assert img.crc_ok()

    def test_crc_detects_corruption(self):
        img = encode_packet(plain_route(2), b"data!")
        corrupted = bytearray(img.data)
        corrupted[-2] ^= 0xFF  # flip payload bits
        bad = PacketImage(data=bytes(corrupted), payload_len=img.payload_len)
        assert not bad.crc_ok()

    def test_custom_type(self):
        img = encode_packet(plain_route(1), b"", final_type=TYPE_IP)
        _, img = img.strip_route_byte()
        assert img.leading_type() == TYPE_IP

    def test_itb_as_final_type_rejected(self):
        with pytest.raises(PacketFormatError):
            encode_packet(plain_route(1), b"", final_type=TYPE_ITB)


class TestItbFormat:
    def test_layout(self):
        """Fig 3b: path | ITB | len | path | type | payload | CRC."""
        route = two_segment_route()
        img = encode_packet(route, b"abc")
        expected = (2                      # first segment path
                    + ITB_HEADER_LEN       # ITB tag + remaining length
                    + 1                    # second segment path
                    + TYPE_LEN + 3 + CRC_LEN)
        assert len(img.data) == expected

    def test_transit_host_view(self):
        """After the first segment's switches strip their bytes, the
        NIC sees the ITB tag within the leading bytes."""
        route = two_segment_route()
        img = encode_packet(route, b"abc")
        _, img = img.strip_route_byte()
        _, img = img.strip_route_byte()
        assert img.is_itb()
        remaining, img = img.strip_itb_stage()
        assert remaining == 1  # one route byte left for segment 2
        # The re-injected packet is again a well-formed Myrinet packet.
        port, img = img.strip_route_byte()
        assert port == 3
        assert img.leading_type() == TYPE_GM
        assert img.payload() == b"abc"

    def test_three_segments(self):
        seg1 = SourceRoute(src=1, dst=2, ports=(0,), switch_path=(10,))
        seg2 = SourceRoute(src=2, dst=3, ports=(1, 2), switch_path=(10, 11))
        seg3 = SourceRoute(src=3, dst=4, ports=(3,), switch_path=(11,))
        img = encode_packet(ItbRoute((seg1, seg2, seg3)), b"zz")
        info = decode_header(img)
        assert info.n_itb_stages == 2
        # Walk the whole packet as switches + transit hosts would.
        _, img = img.strip_route_byte()
        _, img = img.strip_itb_stage()
        _, img = img.strip_route_byte()
        _, img = img.strip_route_byte()
        _, img = img.strip_itb_stage()
        _, img = img.strip_route_byte()
        assert img.leading_type() == TYPE_GM

    def test_strip_itb_requires_position(self):
        img = encode_packet(plain_route(2), b"q")
        with pytest.raises(PacketFormatError):
            img.strip_itb_stage()

    def test_wire_length_shrinks(self):
        route = two_segment_route()
        img = encode_packet(route, b"abcd")
        initial = img.wire_length
        _, img = img.strip_route_byte()
        assert img.wire_length == initial - 1
        _, img = img.strip_route_byte()
        _, img = img.strip_itb_stage()
        assert img.wire_length == initial - 2 - ITB_HEADER_LEN


class TestDecodeHeader:
    def test_plain_packet(self):
        img = encode_packet(plain_route(4), b"12345")
        info = decode_header(img)
        assert info.leading_route_bytes == 4
        assert info.final_type == TYPE_GM
        assert info.payload_len == 5
        assert info.n_itb_stages == 0

    def test_itb_packet(self):
        img = encode_packet(two_segment_route(), b"12")
        info = decode_header(img)
        assert info.leading_route_bytes == 2
        assert info.n_itb_stages == 1
        assert info.stages == (TYPE_ITB, TYPE_GM)

    def test_unknown_type_rejected(self):
        bad = PacketImage(data=bytes([0x00, 0x01, 0xAA]))
        with pytest.raises(PacketFormatError):
            decode_header(bad)

    def test_truncated_packet_rejected(self):
        bad = PacketImage(data=bytes([0x81]))  # route byte, nothing after
        with pytest.raises(PacketFormatError):
            decode_header(bad)


class TestValidation:
    def test_route_byte_port_bounds(self):
        big = SourceRoute(src=0, dst=1, ports=(64,), switch_path=(2,))
        with pytest.raises(PacketFormatError):
            encode_packet(big, b"")

    def test_strip_route_byte_needs_route_byte(self):
        img = encode_packet(plain_route(1), b"")
        _, img = img.strip_route_byte()
        with pytest.raises(PacketFormatError):
            img.strip_route_byte()

    def test_offset_bounds(self):
        with pytest.raises(PacketFormatError):
            PacketImage(data=b"abc", offset=5)


@given(
    n_route=st.integers(min_value=1, max_value=10),
    payload=st.binary(min_size=0, max_size=200),
)
@settings(max_examples=60)
def test_roundtrip_property_plain(n_route, payload):
    """Any plain packet survives full header consumption with its
    payload and CRC intact."""
    route = SourceRoute(src=0, dst=1, ports=tuple(range(n_route)),
                        switch_path=tuple(range(n_route)))
    img = encode_packet(route, payload)
    assert img.crc_ok()
    for expected in range(n_route):
        port, img = img.strip_route_byte()
        assert port == expected
    assert img.leading_type() == TYPE_GM
    assert img.payload() == payload
    assert img.crc_ok()


@given(
    seg_lens=st.lists(st.integers(min_value=1, max_value=5),
                      min_size=2, max_size=4),
    payload=st.binary(min_size=0, max_size=64),
)
@settings(max_examples=60)
def test_roundtrip_property_itb(seg_lens, payload):
    """Any multi-segment packet walks cleanly through all its stages."""
    segs = []
    node = 0
    for n in seg_lens:
        segs.append(SourceRoute(src=node, dst=node + 1,
                                ports=tuple(range(n)),
                                switch_path=tuple(range(n))))
        node += 1
    img = encode_packet(ItbRoute(tuple(segs)), payload)
    for i, n in enumerate(seg_lens):
        for expected in range(n):
            port, img = img.strip_route_byte()
            assert port == expected
        if i < len(seg_lens) - 1:
            assert img.is_itb()
            remaining, img = img.strip_itb_stage()
            assert remaining == seg_lens[i + 1]
    assert img.leading_type() == TYPE_GM
    assert img.payload() == payload
