"""EXP-F7 harness tests: the Figure 7 reproduction must hold its shape."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.harness.fig7 import Fig7Result, Fig7Row, run_fig7

SIZES = (16, 256, 2048)


@pytest.fixture(scope="module")
def fig7() -> Fig7Result:
    # Noise-free, few iterations: the deltas are exact in simulation.
    t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
    return run_fig7(sizes=SIZES, iterations=10, timings=t)


class TestFig7Shape:
    def test_overhead_near_125ns(self, fig7):
        """Paper: average ~125 ns per packet."""
        assert 100.0 <= fig7.mean_overhead_ns <= 150.0

    def test_overhead_never_exceeds_300ns(self, fig7):
        """Paper: difference never exceeds ~300 ns."""
        assert fig7.max_overhead_ns <= 300.0

    def test_overhead_always_positive(self, fig7):
        """The modified firmware is never faster."""
        assert fig7.min_overhead_ns > 0.0

    def test_overhead_equals_check_cost_exactly_when_noise_free(self, fig7):
        """Noise-free simulation: the delta IS the added instructions."""
        expected = Timings().itb_check_ns
        for row in fig7.rows:
            assert row.overhead_ns == pytest.approx(expected, abs=1.0)

    def test_relative_overhead_decreases_with_size(self, fig7):
        rels = [r.relative_pct for r in fig7.rows]
        assert rels == sorted(rels, reverse=True)

    def test_relative_range_matches_paper(self, fig7):
        """Paper: ~1 % for short packets, falling under ~0.5 %."""
        assert 0.5 <= fig7.relative_short_pct <= 2.5
        assert fig7.relative_long_pct <= 0.7

    def test_latency_grows_with_size(self, fig7):
        originals = [r.original_ns for r in fig7.rows]
        assert originals == sorted(originals)


class TestFig7WithNoise:
    def test_mean_still_near_check_cost(self):
        """With host noise on (the default), per-size averages stay
        near the instruction cost — the paper's 125 ns average with
        scatter bounded well under 300 ns."""
        res = run_fig7(sizes=(64,), iterations=60, seed=42)
        assert 60.0 <= res.mean_overhead_ns <= 250.0


class TestRowMath:
    def test_row_properties(self):
        row = Fig7Row(size=8, original_ns=10_000.0, modified_ns=10_125.0)
        assert row.overhead_ns == 125.0
        assert row.relative_pct == pytest.approx(1.25)
