"""Unit tests for the topology graph model."""

from __future__ import annotations

import pytest

from repro.topology.graph import NodeKind, PortKind, Topology, TopologyError


@pytest.fixture
def basic():
    """Two switches, two hosts, one inter-switch SAN cable."""
    topo = Topology()
    s1 = topo.add_switch(n_ports=8, name="s1")
    s2 = topo.add_switch(n_ports=8, name="s2")
    topo.connect(s1, 0, s2, 0, kind=PortKind.SAN)
    h1 = topo.attach_host(s1, 1, kind=PortKind.LAN, name="h1")
    h2 = topo.attach_host(s2, 1, kind=PortKind.SAN, name="h2")
    return topo, s1, s2, h1, h2


class TestConstruction:
    def test_node_kinds(self, basic):
        topo, s1, s2, h1, h2 = basic
        assert topo.kind(s1) is NodeKind.SWITCH
        assert topo.kind(h1) is NodeKind.HOST
        assert topo.is_switch(s2) and topo.is_host(h2)
        assert topo.switches() == [s1, s2]
        assert topo.hosts() == [h1, h2]

    def test_switch_needs_ports(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_switch(n_ports=0)

    def test_port_bounds_checked(self, basic):
        topo, s1, s2, *_ = basic
        with pytest.raises(TopologyError):
            topo.connect(s1, 99, s2, 2)

    def test_double_cabling_rejected(self, basic):
        topo, s1, s2, *_ = basic
        with pytest.raises(TopologyError, match="already cabled"):
            topo.connect(s1, 0, s2, 3)

    def test_unknown_node_rejected(self, basic):
        topo, *_ = basic
        with pytest.raises(TopologyError):
            topo.connect(999, 0, 0, 5)

    def test_free_port_scans_in_order(self, basic):
        topo, s1, *_ = basic
        assert topo.free_port(s1) == 2  # 0 and 1 cabled

    def test_free_port_exhaustion(self):
        topo = Topology()
        s = topo.add_switch(n_ports=1)
        topo.attach_host(s, 0)
        with pytest.raises(TopologyError, match="no free ports"):
            topo.free_port(s)


class TestLoopbacks:
    def test_loopback_on_switch_allowed(self):
        topo = Topology()
        s = topo.add_switch(n_ports=4)
        lid = topo.connect(s, 0, s, 1, kind=PortKind.LAN)
        link = topo.link(lid)
        assert link.is_loop
        assert link.far_end(s, 0) == (s, 1)
        assert link.far_end(s, 1) == (s, 0)
        assert link.direction_from(s, 0) == 0
        assert link.direction_from(s, 1) == 1

    def test_loopback_same_port_rejected(self):
        topo = Topology()
        s = topo.add_switch(n_ports=4)
        with pytest.raises(TopologyError, match="distinct ports"):
            topo.connect(s, 0, s, 0)

    def test_loopback_on_host_rejected(self):
        topo = Topology()
        topo.add_switch(n_ports=4)
        h = topo.add_host()
        with pytest.raises(TopologyError):
            topo.connect(h, 0, h, 0)

    def test_other_ambiguous_on_loopback(self):
        topo = Topology()
        s = topo.add_switch(n_ports=4)
        lid = topo.connect(s, 0, s, 1)
        with pytest.raises(TopologyError, match="loopback"):
            topo.link(lid).other(s)

    def test_loopback_excluded_from_switch_neighbors(self):
        topo = Topology()
        s1 = topo.add_switch(n_ports=4)
        s2 = topo.add_switch(n_ports=4)
        topo.connect(s1, 0, s2, 0)
        topo.connect(s1, 1, s1, 2)
        neighbors = [n for (_p, n, _l) in topo.switch_neighbors(s1)]
        assert neighbors == [s2]

    def test_loopback_appears_in_neighbors_twice(self):
        topo = Topology()
        s = topo.add_switch(n_ports=4)
        topo.connect(s, 1, s, 2)
        entries = topo.neighbors(s)
        assert len(entries) == 2
        assert all(n == s for (_p, n, _l) in entries)


class TestQueries:
    def test_switch_of_host(self, basic):
        topo, s1, s2, h1, h2 = basic
        assert topo.switch_of(h1) == s1
        assert topo.switch_of(h2) == s2

    def test_switch_of_rejects_switch(self, basic):
        topo, s1, *_ = basic
        with pytest.raises(TopologyError):
            topo.switch_of(s1)

    def test_switch_of_uncabled_host(self):
        topo = Topology()
        topo.add_switch()
        h = topo.add_host()
        with pytest.raises(TopologyError, match="not cabled"):
            topo.switch_of(h)

    def test_hosts_on(self, basic):
        topo, s1, s2, h1, h2 = basic
        assert topo.hosts_on(s1) == [h1]
        assert topo.hosts_on(s2) == [h2]

    def test_links_between_and_port_toward(self, basic):
        topo, s1, s2, h1, _ = basic
        links = topo.links_between(s1, s2)
        assert len(links) == 1
        assert topo.port_toward(s1, s2) == 0
        assert topo.port_toward(s2, s1) == 0
        assert topo.port_toward(s1, h1) == 1
        with pytest.raises(TopologyError):
            topo.port_toward(h1, s2)

    def test_parallel_links(self):
        topo = Topology()
        s1, s2 = topo.add_switch(), topo.add_switch()
        topo.connect(s1, 0, s2, 0)
        topo.connect(s1, 1, s2, 1)
        assert len(topo.links_between(s1, s2)) == 2
        # port_toward picks the lowest-id cable
        assert topo.port_toward(s1, s2) == 0

    def test_link_at(self, basic):
        topo, s1, *_ = basic
        assert topo.link_at(s1, 0) is not None
        assert topo.link_at(s1, 7) is None


class TestWalkRoute:
    def test_walks_to_destination(self, basic):
        topo, s1, s2, h1, h2 = basic
        # h1 -> s1(port 0 -> s2) -> s2(port 1 -> h2)
        assert topo.walk_route(h1, [0, 1]) == h2

    def test_walks_through_loopback(self):
        topo = Topology()
        s = topo.add_switch(n_ports=6)
        topo.connect(s, 0, s, 1)
        h1 = topo.attach_host(s, 2, name="a")
        h2 = topo.attach_host(s, 3, name="b")
        # h1 -> s(loop out port 0 -> back in port 1) -> s(port 3 -> h2)
        assert topo.walk_route(h1, [0, 3]) == h2

    def test_uncabled_port_is_error(self, basic):
        topo, _, _, h1, _ = basic
        with pytest.raises(TopologyError, match="not cabled"):
            topo.walk_route(h1, [7])

    def test_route_through_host_is_error(self, basic):
        topo, _, _, h1, _ = basic
        # Second byte would be consumed at host h2.
        with pytest.raises(TopologyError, match="non-switch"):
            topo.walk_route(h1, [0, 1, 0])


class TestValidate:
    def test_valid_topology_passes(self, basic):
        basic[0].validate()

    def test_disconnected_fabric_fails(self):
        topo = Topology()
        topo.add_switch()
        topo.add_switch()
        with pytest.raises(TopologyError, match="not connected"):
            topo.validate()

    def test_hosts_without_switches_fails(self):
        topo = Topology()
        h1 = topo.add_host()
        h2 = topo.add_host()
        with pytest.raises(TopologyError):
            topo.connect(h1, 0, h2, 0)  # host-to-host cabling
            topo.validate()
