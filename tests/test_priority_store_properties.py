"""Property-based tests for PriorityStore (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import PriorityStore


@given(items=st.lists(
    st.tuples(st.integers(min_value=0, max_value=10),  # priority
              st.integers()),                          # payload
    min_size=1, max_size=60))
@settings(max_examples=60)
def test_drain_order_is_stable_priority_order(items):
    """Draining a pre-filled store yields (priority, insertion-index)
    lexicographic order: strictly by priority, FIFO within ties."""
    sim = Simulator()
    store = PriorityStore(sim)
    for i, (prio, payload) in enumerate(items):
        store.put((i, payload), priority=prio)
    drained = []
    while len(store):
        ok, item = store.try_get()
        assert ok
        drained.append(item)
    expected = [
        (i, payload)
        for (prio, i, payload) in sorted(
            (prio, i, payload) for i, (prio, payload) in enumerate(items)
        )
    ]
    assert drained == expected


@given(
    puts=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False),          # put time
                  st.integers(min_value=0, max_value=5)),  # priority
        min_size=1, max_size=30),
)
@settings(max_examples=40)
def test_consumer_never_starves_and_gets_everything(puts):
    """A consumer draining as fast as items appear receives exactly
    the posted multiset, regardless of put timing and priorities."""
    sim = Simulator()
    store = PriorityStore(sim)
    received = []

    for idx, (t, prio) in enumerate(puts):
        sim.schedule(t, lambda idx=idx, prio=prio: store.put(idx, prio))

    def consumer():
        for _ in range(len(puts)):
            item = yield store.get()
            received.append(item)

    sim.process(consumer())
    sim.run()
    assert sorted(received) == list(range(len(puts)))


@given(n=st.integers(min_value=1, max_value=20))
@settings(max_examples=20)
def test_len_tracks_contents(n):
    sim = Simulator()
    store = PriorityStore(sim)
    for i in range(n):
        store.put(i, priority=i % 3)
    assert len(store) == n
    for k in range(n):
        store.try_get()
        assert len(store) == n - k - 1
