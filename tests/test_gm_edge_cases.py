"""GM layer edge cases: segmentation boundaries, interleaving,
retransmission scope, multi-connection interactions."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.host import GM_MTU


def build(reliable=True, **kw):
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network("fig6", config=cfg)


class TestSegmentationBoundaries:
    @pytest.mark.parametrize("size,packets", [
        (GM_MTU - 1, 1),
        (GM_MTU, 1),
        (GM_MTU + 1, 2),
        (2 * GM_MTU, 2),
        (2 * GM_MTU + 1, 3),
    ])
    def test_packet_counts(self, size, packets):
        net = build(reliable=False)
        a, b = net.gm("host1"), net.gm("host2")
        a.send(b.host, size)
        net.sim.run(until=10_000_000)
        assert net.nic("host1").stats.packets_sent == packets

    def test_large_message_delivered_with_correct_length(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        size = 3 * GM_MTU + 17
        got = []

        def rx():
            msg = yield b.receive()
            got.append(msg)

        net.sim.process(rx(), name="rx")
        a.send(b.host, size)
        net.sim.run(until=20_000_000)
        assert got and got[0].length == size


class TestInterleaving:
    def test_messages_from_two_senders_to_one_receiver(self):
        net = build()
        a, c = net.gm("host1"), net.gm("itb")
        b = net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append((msg.src, msg.tag))

        net.sim.process(rx(), name="rx")
        for i in range(3):
            a.send(b.host, 64, tag=i)
            c.send(b.host, 64, tag=100 + i)
        net.sim.run(until=20_000_000)
        # Per-sender order preserved; global interleaving arbitrary.
        from_a = [t for s, t in got if s == a.host]
        from_c = [t for s, t in got if s == c.host]
        assert from_a == [0, 1, 2]
        assert from_c == [100, 101, 102]

    def test_sequence_spaces_are_per_connection(self):
        """Host1's seqs toward host2 are independent of its seqs
        toward the transit host."""
        net = build()
        a = net.gm("host1")
        a.send(net.roles["host2"], 10)
        a.send(net.roles["itb"], 10)
        a.send(net.roles["host2"], 10)
        net.sim.run(until=20_000_000)
        assert a._connections[net.roles["host2"]].next_seq == 2
        assert a._connections[net.roles["itb"]].next_seq == 1


class TestRetransmissionScope:
    def test_only_lost_packet_retransmitted(self):
        """A single mid-stream loss triggers go-back-N resends for the
        lost packet onward, never for already-acked prefixes."""
        from repro.network.faults import FaultPlan, install_fault_plan

        net = build()
        # Exactly one loss: probability tuned against the known RNG
        # stream is brittle, so instead drop deterministically by
        # wrapping: lose only the 3rd eligible packet.
        plan = FaultPlan(loss_probability=0.0)
        count = {"n": 0}
        original_roll = plan.roll

        def roll_third(pid):
            count["n"] += 1
            if count["n"] == 3:
                plan.lost += 1
                return "lost"
            return original_roll(pid)

        plan.roll = roll_third  # type: ignore[method-assign]
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(rx(), name="rx")
        for i in range(5):
            a.send(b.host, 64, tag=i)
        net.sim.run(until=50_000_000)
        assert got == [0, 1, 2, 3, 4]
        assert plan.lost == 1
        # Go-back-N: the loss of packet 3 (seq 2) may force resends of
        # it and its successors, but never more than the tail.
        assert 1 <= a.retransmissions <= 3


class TestAckBehaviour:
    def test_acks_are_small_and_counted(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")

        def rx():
            yield b.receive()

        net.sim.process(rx(), name="rx")
        a.send(b.host, 1000)
        net.sim.run(until=10_000_000)
        # Data: 1 packet a->b.  Ack: 1 packet b->a.
        assert net.nic("host1").stats.packets_sent == 1
        assert net.nic("host2").stats.packets_sent == 1
        assert net.nic("host2").stats.bytes_sent < 100  # tiny control pkt

    def test_no_acks_when_unreliable(self):
        net = build(reliable=False)
        a, b = net.gm("host1"), net.gm("host2")
        a.send(b.host, 1000)
        net.sim.run(until=10_000_000)
        assert net.nic("host2").stats.packets_sent == 0
