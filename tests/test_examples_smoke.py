"""Smoke tests: every example script runs and exits cleanly.

The two fastest examples run on every test invocation; the longer ones
are gated behind ``REPRO_RUN_ALL_EXAMPLES=1`` (the benchmark/CI pass).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    ("quickstart.py", []),
    ("buffer_pool_reliability.py", []),
]
SLOW = [
    ("reproduce_paper.py", []),
    ("irregular_cluster.py", ["--switches", "8"]),
    ("network_discovery.py", ["--switches", "4"]),
    ("mpi_style_solver.py", ["--switches", "6", "--iters", "5"]),
    ("diagnostics_tour.py", []),
    ("layered_stack.py", []),
]


def run_example(name: str, args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=600,
    )


class TestExamplesExist:
    def test_at_least_three_examples(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    def test_every_example_has_a_docstring(self):
        for script in EXAMPLES_DIR.glob("*.py"):
            text = script.read_text()
            assert '"""' in text.split("\n", 3)[-1] or \
                text.lstrip().startswith(('"""', '#!')), script.name


@pytest.mark.parametrize("name,args", FAST, ids=[n for n, _ in FAST])
def test_fast_example_runs(name, args):
    result = run_example(name, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


@pytest.mark.skipif(
    os.environ.get("REPRO_RUN_ALL_EXAMPLES", "0") != "1",
    reason="set REPRO_RUN_ALL_EXAMPLES=1 to run the long examples",
)
@pytest.mark.parametrize("name,args", SLOW, ids=[n for n, _ in SLOW])
def test_slow_example_runs(name, args):
    result = run_example(name, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
