"""Tests for BFS spanning tree and up/down orientation."""

from __future__ import annotations

import pytest

from repro.routing.routes import Direction, RouteError
from repro.routing.spanning_tree import build_orientation, choose_root
from repro.topology.generators import fig1_topology, linear_switches, random_irregular
from repro.topology.graph import Topology


class TestBuildOrientation:
    def test_levels_from_root(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        assert o.level[roles["sw0"]] == 0
        assert o.level[roles["sw1"]] == 1
        assert o.level[roles["sw2"]] == 1
        assert o.level[roles["sw4"]] == 2
        assert o.level[roles["sw6"]] == 2

    def test_up_end_is_closer_to_root(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        link = topo.links_between(roles["sw0"], roles["sw1"])[0]
        assert o.up_end[link.link_id] == roles["sw0"]

    def test_tie_broken_by_lower_id(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        # sw4 and sw6 are both level 2; lower id wins the up end.
        link = topo.links_between(roles["sw4"], roles["sw6"])[0]
        assert o.up_end[link.link_id] == min(roles["sw4"], roles["sw6"])

    def test_every_fabric_link_oriented(self):
        topo = random_irregular(12, seed=1)
        o = build_orientation(topo)
        fabric = [l for l in topo.links
                  if topo.is_switch(l.node_a) and topo.is_switch(l.node_b)]
        assert set(o.up_end) == {l.link_id for l in fabric}

    def test_bad_root_rejected(self):
        topo, roles = fig1_topology()
        with pytest.raises(RouteError):
            build_orientation(topo, root=roles["host_on_sw0"])

    def test_no_switches_rejected(self):
        topo = Topology()
        with pytest.raises(RouteError):
            build_orientation(topo)


class TestDirection:
    def test_direction_semantics(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        link = topo.links_between(roles["sw0"], roles["sw1"])[0]
        assert o.direction(link.link_id, roles["sw1"], roles["sw0"]) is Direction.UP
        assert o.direction(link.link_id, roles["sw0"], roles["sw1"]) is Direction.DOWN

    def test_host_link_has_no_direction(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        host_link = topo.host_link(roles["host_on_sw0"])
        with pytest.raises(RouteError):
            o.direction(host_link.link_id, roles["sw0"], roles["host_on_sw0"])

    def test_transition_rule(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        assert o.is_valid_transition(None, Direction.UP)
        assert o.is_valid_transition(None, Direction.DOWN)
        assert o.is_valid_transition(Direction.UP, Direction.DOWN)
        assert o.is_valid_transition(Direction.UP, Direction.UP)
        assert o.is_valid_transition(Direction.DOWN, Direction.DOWN)
        assert not o.is_valid_transition(Direction.DOWN, Direction.UP)


class TestPathValidity:
    def test_fig1_shortcut_invalid(self):
        """The paper's Figure 1 situation: 4 -> 6 -> 1 is forbidden."""
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        path = [roles["sw4"], roles["sw6"], roles["sw1"]]
        assert not o.is_valid_updown_path(topo, path)
        assert o.violations(topo, path) == [1]  # at sw6

    def test_fig1_updown_alternative_valid(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        path = [roles["sw4"], roles["sw2"], roles["sw0"], roles["sw1"]]
        assert o.is_valid_updown_path(topo, path)
        assert o.violations(topo, path) == []

    def test_single_switch_path_valid(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        assert o.is_valid_updown_path(topo, [roles["sw3"]])

    def test_broken_path_rejected(self):
        topo, roles = fig1_topology()
        o = build_orientation(topo, root=roles["sw0"])
        with pytest.raises(RouteError):
            o.path_directions(topo, [roles["sw4"], roles["sw3"]])


class TestChooseRoot:
    def test_min_eccentricity_on_chain(self):
        topo = linear_switches(5)
        root = choose_root(topo)
        # Middle of a 5-chain minimizes eccentricity.
        assert root == topo.switches()[2]

    def test_deterministic(self):
        topo = random_irregular(10, seed=5)
        assert choose_root(topo) == choose_root(topo)
