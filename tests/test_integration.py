"""Cross-module integration tests: the whole stack at once."""

from __future__ import annotations

import itertools

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.topology.generators import random_irregular


def quiet_cfg(**kw):
    defaults = dict(
        firmware="itb",
        routing="itb",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    defaults.update(kw)
    return NetworkConfig(**defaults)


class TestAllPairsMessaging:
    """Every host pair on a random irregular network exchanges a
    message using mapper-stamped ITB routes; everything must arrive,
    exactly once, payload-length intact."""

    @pytest.mark.parametrize("seed", [3, 17])
    def test_random_network_all_pairs(self, seed):
        topo = random_irregular(6, seed=seed, hosts_per_switch=1)
        net = build_network(topo, config=quiet_cfg())
        sim = net.sim
        hosts = sorted(net.gm_hosts)
        expected = {(s, d) for s, d in itertools.permutations(hosts, 2)}
        received: set[tuple[int, int]] = set()
        done = sim.event("all-pairs-done")

        def receiver(h):
            gm = net.gm_hosts[h]
            while True:
                msg = yield gm.receive()
                assert msg.length == 64
                key = (msg.src, msg.dst)
                assert key not in received, "duplicate delivery"
                received.add(key)
                if received == expected:
                    done.succeed()

        for h in hosts:
            sim.process(receiver(h), name=f"rx[{h}]")
        for s, d in sorted(expected):
            net.gm_hosts[s].send(d, 64)
        sim.run_until_event(done)
        assert received == expected

    def test_itb_routes_actually_used(self):
        """On a network where the mapper emits ITB routes, packets
        really transit through intermediate hosts."""
        # The fig1 network guarantees at least the 4->1 pair uses an ITB.
        net = build_network("fig1", config=quiet_cfg(trace=True))
        src = net.roles["host_on_sw4"]
        dst = net.roles["host_on_sw1"]
        got = net.sim.event("got")

        def receiver():
            msg = yield net.gm_hosts[dst].receive()
            got.succeed(msg)

        net.sim.process(receiver(), name="rx")
        net.gm_hosts[src].send(dst, 256)
        net.sim.run_until_event(got)
        stats = net.total_stats()
        assert stats["packets_forwarded"] >= 1


class TestFirmwareRoutingMatrix:
    """All four firmware x routing combinations behave as documented."""

    def test_original_firmware_with_updown_routes_works(self):
        net = build_network("fig6", config=quiet_cfg(
            firmware="original", routing="updown"))
        res = net.ping_pong("host1", "host2", size=128, iterations=3)
        assert res.mean_ns > 0

    def test_original_firmware_with_itb_routes_loses_packets(self):
        """Stamping ITB routes onto stock firmware drops at transit
        hosts — the incompatibility the new packet type introduces."""
        net = build_network("fig1", config=quiet_cfg(
            firmware="original", routing="itb"))
        src = net.roles["host_on_sw4"]
        dst = net.roles["host_on_sw1"]
        net.gm_hosts[src].send(dst, 64)
        net.sim.run(until=10_000_000)
        assert net.gm_hosts[dst].messages_received == 0
        assert net.total_stats()["packets_dropped_unknown"] >= 1

    def test_itb_firmware_backward_compatible(self):
        """The modified firmware carries plain up*/down* traffic
        unchanged (just the 125 ns check)."""
        net = build_network("fig6", config=quiet_cfg(
            firmware="itb", routing="updown"))
        res = net.ping_pong("host1", "host2", size=128, iterations=3)
        assert res.mean_ns > 0
        assert net.total_stats()["packets_forwarded"] == 0


class TestConservation:
    def test_packet_conservation_under_load(self):
        """No packet is created or destroyed: sent + forwarded =
        received (+ in-flight none, run drains)."""
        from repro.harness.workloads import drive_traffic
        from repro.harness.throughput import build_load_network

        topo = random_irregular(5, seed=8)
        net = build_load_network(topo, "itb")
        drive_traffic(net, rate_bytes_per_ns_per_host=0.02,
                      packet_size=256, duration_ns=50_000)
        # Let in-flight packets drain.
        net.sim.run(until=net.sim.now + 1_000_000)
        stats = net.total_stats()
        assert stats["packets_received"] == pytest.approx(
            stats["packets_sent"] + stats["packets_forwarded"]
            - stats["packets_flushed"], abs=0)

    def test_channels_all_released_after_drain(self):
        net = build_network("fig6", config=quiet_cfg())
        net.ping_pong("host1", "host2", size=4096, iterations=3)
        snapshot = net.fabric.utilization_snapshot()
        assert all(v == 0 for v in snapshot.values())
