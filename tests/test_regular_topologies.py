"""Tests for the regular topology families (torus, star) and how the
three routers behave on them."""

from __future__ import annotations

import itertools

import pytest

from repro.routing.cdg import is_deadlock_free
from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import star_of_switches, torus_2d
from repro.topology.graph import TopologyError


class TestTorus:
    def test_shape(self):
        topo = torus_2d(3, 4, hosts_per_switch=2)
        assert len(topo.switches()) == 12
        assert len(topo.hosts()) == 24
        # Every switch has degree 4 in a torus.
        for s in topo.switches():
            assert len(topo.switch_neighbors(s)) == 4

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            torus_2d(2, 3)

    def test_validates(self):
        torus_2d(3, 3).validate()

    def test_itb_routing_sound_on_torus(self):
        topo = torus_2d(3, 3)
        orientation = build_orientation(topo)
        itb = ItbRouter(topo, orientation)
        routes = itb.all_pairs()
        for (s, d), route in routes.items():
            current = s
            for seg in route.segments:
                assert topo.walk_route(current, list(seg.ports)) == seg.dst
                current = seg.dst
        assert is_deadlock_free(topo, routes.values())

    def test_updown_already_minimal_on_small_tori(self):
        """Surprising but true (and worth pinning): from the
        min-eccentricity root, up*/down* achieves minimal hop counts
        on small tori, so the ITB router emits zero ITBs — the ITB
        advantage is specific to *irregular* fabrics, matching the
        paper's setting."""
        topo = torus_2d(3, 3)
        orientation = build_orientation(topo)
        itb = ItbRouter(topo, orientation)
        ud = UpDownRouter(topo, orientation)
        mn = MinimalRouter(topo)
        hosts = topo.hosts()
        pairs = list(itertools.permutations(hosts, 2))
        itb_hops = sum(len(itb.itb_route(s, d).switch_hops())
                       for s, d in pairs)
        ud_hops = sum(len(ud.route(s, d).switch_hops()) for s, d in pairs)
        min_hops = sum(len(mn.route(s, d).switch_hops()) for s, d in pairs)
        assert itb_hops == ud_hops == min_hops
        assert sum(itb.itb_route(s, d).n_itbs for s, d in pairs) == 0

    def test_itb_matches_minimal_hops(self):
        """With a host on every switch, ITB achieves minimal fabric
        hop counts on the torus."""
        topo = torus_2d(3, 3)
        itb = ItbRouter(topo, build_orientation(topo))
        mn = MinimalRouter(topo)
        for s, d in itertools.permutations(topo.hosts(), 2):
            assert len(itb.itb_route(s, d).switch_hops()) == \
                len(mn.route(s, d).switch_hops())


class TestStar:
    def test_shape(self):
        topo = star_of_switches(5, hosts_per_leaf=2)
        assert len(topo.switches()) == 6
        assert len(topo.hosts()) == 10

    def test_needs_a_leaf(self):
        with pytest.raises(TopologyError):
            star_of_switches(0)

    def test_updown_is_already_optimal(self):
        """On a tree, every minimal path is a valid up*/down* path:
        the ITB router must emit zero ITBs and match up*/down*."""
        topo = star_of_switches(4, hosts_per_leaf=1)
        orientation = build_orientation(topo)
        itb = ItbRouter(topo, orientation)
        ud = UpDownRouter(topo, orientation)
        for s, d in itertools.permutations(topo.hosts(), 2):
            route = itb.itb_route(s, d)
            assert route.n_itbs == 0
            assert route.segments[0].switch_path == \
                ud.route(s, d).switch_path

    def test_hub_is_the_root(self):
        topo = star_of_switches(4)
        orientation = build_orientation(topo)
        # Min-eccentricity root selection must pick the hub.
        assert orientation.root == topo.switches()[0]
