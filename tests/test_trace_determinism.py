"""Tracer determinism: byte-identical span dumps, serial and parallel.

Span ids are assigned in creation order by a per-fabric tracer, and
the runner merges per-point results by point index, so a fixed-seed
experiment must produce *byte-identical* canonical span dumps run
after run — serially, and fanned out over a fork pool (``--jobs 4``).
This is the observability analogue of the engine-determinism suite:
if it holds, a trace captured in CI is reproducible at a desk.
"""

from __future__ import annotations

import pytest

from repro.exp import ExperimentSpec, Runner
from repro.obs.tracing import configure, disable, load_dump, tree_signature


@pytest.fixture(autouse=True)
def traced():
    configure(sample_every=1)
    yield
    disable()


def run_dumps(experiment: str, jobs: int) -> list[str]:
    spec = ExperimentSpec(experiment=experiment, sizes=(16, 256),
                          iterations=2)
    report = Runner().run(spec, jobs=jobs)
    assert report.span_dumps, "traced run produced no span dumps"
    return report.span_dumps


class TestSerialRepeatability:
    @pytest.mark.parametrize("experiment", ["fig7", "fig8"])
    def test_back_to_back_runs_identical(self, experiment):
        assert run_dumps(experiment, jobs=1) == run_dumps(experiment, jobs=1)


class TestParallelMergeIdentical:
    @pytest.mark.parametrize("experiment", ["fig7", "fig8"])
    def test_jobs4_matches_serial_byte_for_byte(self, experiment):
        serial = run_dumps(experiment, jobs=1)
        parallel = run_dumps(experiment, jobs=4)
        assert serial == parallel

    def test_dumps_are_loadable_and_nonempty(self):
        for dump in run_dumps("fig7", jobs=4):
            spans = load_dump(dump)
            assert spans
            assert tree_signature(spans)
