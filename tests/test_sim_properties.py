"""Property-based tests (hypothesis) for the simulation kernel."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=60))
@settings(max_examples=60)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=1e4,
                                 allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=40)
def test_identical_seeds_give_identical_traces(delays):
    """Determinism: the same schedule replays identically."""

    def run_once():
        sim = Simulator()
        out = []
        for i, d in enumerate(delays):
            sim.schedule(d, lambda i=i: out.append((sim.now, i)))
        sim.run()
        return out

    assert run_once() == run_once()


@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.1, max_value=50,
                             allow_nan=False), min_size=1, max_size=30),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = {"n": 0}

    def worker(i, hold):
        yield res.request(owner=i)
        max_seen["n"] = max(max_seen["n"], res.in_use)
        assert res.in_use <= capacity
        yield Timeout(hold)
        res.release(owner=i)

    for i, h in enumerate(holds):
        sim.process(worker(i, h))
    sim.run()
    assert max_seen["n"] <= capacity
    assert res.in_use == 0  # everything released


@given(
    holds=st.lists(st.floats(min_value=0.1, max_value=20,
                             allow_nan=False), min_size=2, max_size=25)
)
@settings(max_examples=50)
def test_resource_fifo_property(holds):
    """Requesters are granted in exactly the order they asked."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = []

    def worker(i, hold):
        yield res.request(owner=i)
        granted.append(i)
        yield Timeout(hold)
        res.release(owner=i)

    for i, h in enumerate(holds):
        sim.process(worker(i, h))
    sim.run()
    assert granted == list(range(len(holds)))


@given(items=st.lists(st.integers(), min_size=1, max_size=50),
       capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=10)))
@settings(max_examples=50)
def test_store_preserves_fifo_under_any_capacity(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield Timeout(1)

    def consumer():
        for _ in items:
            item = yield store.get()
            received.append(item)
            yield Timeout(2)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items
