"""Tests for route datatypes and NIC route tables."""

from __future__ import annotations

import pytest

from repro.routing.routes import ItbRoute, RouteError, SourceRoute
from repro.routing.tables import RouteTable, build_route_tables
from repro.routing.updown import UpDownRouter
from repro.topology.generators import fig1_topology


class TestSourceRoute:
    def test_length_mismatch_rejected(self):
        with pytest.raises(RouteError):
            SourceRoute(src=0, dst=1, ports=(1, 2), switch_path=(5,))

    def test_empty_route_rejected(self):
        with pytest.raises(RouteError):
            SourceRoute(src=0, dst=1, ports=(), switch_path=())

    def test_counting_helpers(self):
        r = SourceRoute(src=0, dst=1, ports=(1, 2, 3), switch_path=(7, 8, 9))
        assert r.n_switches == 3
        assert len(r) == 3
        assert r.n_links == 4
        assert r.switch_hops() == [(7, 8), (8, 9)]


class TestItbRoute:
    def seg(self, src, dst, sw):
        return SourceRoute(src=src, dst=dst, ports=(0,), switch_path=(sw,))

    def test_chain_integrity_enforced(self):
        s1 = self.seg(0, 5, 10)
        bad = self.seg(6, 1, 11)  # 6 != 5
        with pytest.raises(RouteError):
            ItbRoute((s1, bad))

    def test_empty_rejected(self):
        with pytest.raises(RouteError):
            ItbRoute(())

    def test_properties(self):
        s1 = self.seg(0, 5, 10)
        s2 = self.seg(5, 6, 11)
        s3 = self.seg(6, 1, 12)
        route = ItbRoute((s1, s2, s3))
        assert route.src == 0 and route.dst == 1
        assert route.itb_hosts == (5, 6)
        assert route.n_itbs == 2
        assert route.n_switches == 3
        assert list(route) == [s1, s2, s3]

    def test_single_segment_has_no_itbs(self):
        route = ItbRoute((self.seg(0, 1, 10),))
        assert route.n_itbs == 0 and route.itb_hosts == ()


class TestRouteTable:
    def test_install_and_lookup(self):
        table = RouteTable(host=0)
        r = SourceRoute(src=0, dst=1, ports=(0,), switch_path=(10,))
        table.install(1, r)
        assert table.lookup(1).segments[0] is r
        assert table.destinations() == [1]
        assert len(table) == 1

    def test_lookup_missing_raises(self):
        with pytest.raises(RouteError):
            RouteTable(host=0).lookup(42)

    def test_wrong_owner_rejected(self):
        table = RouteTable(host=0)
        r = SourceRoute(src=5, dst=1, ports=(0,), switch_path=(10,))
        with pytest.raises(RouteError):
            table.install(1, r)

    def test_wrong_destination_rejected(self):
        table = RouteTable(host=0)
        r = SourceRoute(src=0, dst=1, ports=(0,), switch_path=(10,))
        with pytest.raises(RouteError):
            table.install(2, r)


class TestBuildRouteTables:
    def test_complete_tables(self):
        topo, roles = fig1_topology()
        router = UpDownRouter(topo)
        tables = build_route_tables(topo.hosts(), router)
        n = len(topo.hosts())
        assert len(tables) == n
        for h, table in tables.items():
            assert len(table) == n - 1

    def test_pairs_override(self):
        topo, roles = fig1_topology()
        router = UpDownRouter(topo)
        s, d = roles["host_on_sw0"], roles["host_on_sw1"]
        special = ItbRoute((router.route(s, d),))
        tables = build_route_tables([s, d], router, pairs={(s, d): special})
        assert tables[s].lookup(d) is special
