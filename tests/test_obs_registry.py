"""Tests for the metrics registry primitives."""

from __future__ import annotations

import math

import pytest

from repro.obs.registry import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("packets", {"component": "nic[a]"})
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_inc_rejected(self):
        c = Counter("packets")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_callback_backed(self):
        box = {"n": 0}
        c = Counter("packets", fn=lambda: box["n"])
        box["n"] = 7
        assert c.value == 7.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_callback_backed(self):
        level = [3.5]
        g = Gauge("occupancy", fn=lambda: level[0])
        assert g.value == 3.5
        level[0] = 0.0
        assert g.value == 0.0


class TestHistogram:
    def test_bucket_edges_inclusive_upper(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(10.0)    # exactly on the first edge -> first bucket
        h.observe(10.5)    # second bucket
        h.observe(1000.0)  # overflow -> +Inf bucket
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(1020.5)

    def test_cumulative_counts_end_at_total(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 2.5, 99.0):
            h.observe(v)
        cum = h.cumulative_counts()
        assert cum[-1] == (math.inf, 4)
        assert [c for _e, c in cum] == [1, 2, 3, 4]

    def test_mean_and_empty_mean(self):
        h = Histogram("lat", buckets=(1.0,))
        assert math.isnan(h.mean)
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(MetricError):
            Histogram("lat", buckets=())
        with pytest.raises(MetricError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("lat", buckets=(1.0, math.inf))

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_NS_BUCKETS) == sorted(DEFAULT_NS_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x", component="nic[a]")
        b = reg.counter("x", component="nic[a]")
        assert a is b
        a.inc()
        assert reg.get("x", component="nic[a]").value == 1.0

    def test_same_name_different_component_is_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("x", component="nic[a]")
        b = reg.counter("x", component="nic[b]")
        assert a is not b
        assert len(reg) == 2

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", component="nic[a]")
        with pytest.raises(MetricError):
            reg.gauge("x", component="nic[a]")
        with pytest.raises(MetricError):
            reg.histogram("x", component="nic[a]")

    def test_extra_labels_distinguish(self):
        reg = MetricsRegistry()
        a = reg.counter("ev", component="nic[a]", labels={"kind": "inject"})
        b = reg.counter("ev", component="nic[a]", labels={"kind": "deliver"})
        assert a is not b
        a.inc(3)
        got = reg.get("ev", component="nic[a]", labels={"kind": "inject"})
        assert got.value == 3.0

    def test_histogram_rebucket_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            reg.histogram("lat", buckets=(1.0, 5.0))

    def test_collect_sorted_and_filtered(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        reg.gauge("a", component="z")
        names = [(m.name, m.kind) for m in reg.collect()]
        assert names == [("a", "counter"), ("a", "gauge"), ("b", "gauge")]
        assert all(m.kind == "gauge" for m in reg.gauges())
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "missing" not in reg

    def test_get_missing_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.get("nope")
