"""Tests for virtual-channel lane policies and lane-aware traffic.

Covers the pure walk helpers, the three lane-selection policies, and
the two lane-model properties the refactor promises: round-robin
never starves a lane, and an idle extra lane is observationally
invisible (the lanes=1 oracle — pinned byte-for-byte by the goldens —
produces identical traffic stats when a second, unused lane exists).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.network.fabric import Fabric
from repro.network.lanes import (
    EscapeLanePolicy,
    FixedLanePolicy,
    RoundRobinLanePolicy,
    escape_lane_walk,
    lanes_needed,
    make_lane_policy,
)
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.sim.engine import Simulator
from repro.topology.generators import fig6_testbed, random_irregular


def _quiet() -> Timings:
    return Timings().with_overrides(host_jitter_sigma_ns=0.0)


def _fig6_fabric(lanes: int = 1, lane_policy="fixed"):
    topo, roles = fig6_testbed()
    fabric = Fabric(Simulator(), topo, _quiet(), lanes=lanes,
                    lane_policy=lane_policy)
    return fabric, topo, roles


def _plan(fabric, topo, src, dst):
    """A real up*/down* flight plan between two hosts."""
    router = UpDownRouter(topo, build_orientation(topo))
    seg = router.itb_route(src, dst).segments[0]
    return fabric.flight_plan(seg)


class TestWalkHelpers:
    def test_ascending_walk_stays_on_lane_zero(self):
        steps = [(9, 1, False), (1, 2, True), (2, 5, True), (5, 8, False)]
        assert escape_lane_walk(steps, 3) == (0, 0, 0, 0)
        assert lanes_needed(steps) == 1

    def test_lane_increments_at_each_descent(self):
        steps = [(9, 3, False), (3, 1, True), (1, 4, True), (4, 2, True)]
        assert escape_lane_walk(steps, 3) == (0, 1, 1, 2)
        assert lanes_needed(steps) == 3

    def test_loopback_counts_as_dateline(self):
        # from >= to: a loopback cable (equal ids) crosses the dateline.
        steps = [(9, 2, False), (2, 2, True), (2, 3, True)]
        assert escape_lane_walk(steps, 2) == (0, 1, 1)
        assert lanes_needed(steps) == 2

    def test_host_hops_never_advance_the_lane(self):
        steps = [(9, 1, False), (1, 0, False)]  # host cables only
        assert escape_lane_walk(steps, 4) == (0, 0)
        assert lanes_needed(steps) == 1

    def test_walk_clamps_at_top_lane(self):
        steps = [(5, 4, True), (4, 3, True), (3, 2, True)]
        assert escape_lane_walk(steps, 2) == (1, 1, 1)
        assert lanes_needed(steps) == 4


class TestPolicyConstruction:
    def test_names_resolve(self):
        assert isinstance(make_lane_policy("fixed"), FixedLanePolicy)
        assert isinstance(make_lane_policy("roundrobin"),
                          RoundRobinLanePolicy)
        assert isinstance(make_lane_policy("escape"), EscapeLanePolicy)

    def test_instance_passthrough(self):
        policy = FixedLanePolicy(lane=1)
        assert make_lane_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown lane policy"):
            make_lane_policy("zigzag")

    def test_config_validates_lane_fields(self):
        with pytest.raises(ValueError, match="lanes must be"):
            NetworkConfig(lanes=0)
        with pytest.raises(ValueError, match="lane_policy"):
            NetworkConfig(lanes=2, lane_policy="zigzag")


class TestFixedPolicy:
    def test_constant_assignment_clamped_to_fabric(self):
        fabric, topo, roles = _fig6_fabric(lanes=2)
        plan = _plan(fabric, topo, roles["host1"], roles["host2"])
        assert FixedLanePolicy(lane=0).lanes_for(plan, fabric) == (
            (0,) * len(plan.channels))
        assert FixedLanePolicy(lane=5).lanes_for(plan, fabric) == (
            (1,) * len(plan.channels))


class TestRoundRobinPolicy:
    def test_host_cables_stay_on_lane_zero(self):
        fabric, topo, roles = _fig6_fabric(lanes=3, lane_policy="roundrobin")
        plan = _plan(fabric, topo, roles["host1"], roles["host2"])
        for _ in range(5):
            lanes = fabric.select_lanes(plan)
            assert lanes[0] == 0           # injection cable
            assert lanes[-1] == 0          # delivery cable

    def test_cursor_rotates_per_channel(self):
        fabric, topo, roles = _fig6_fabric(lanes=3, lane_policy="roundrobin")
        plan = _plan(fabric, topo, roles["host1"], roles["host2"])
        switch_hops = [
            i for i, ch in enumerate(plan.channels)
            if topo.is_switch(ch.from_node) and topo.is_switch(ch.to_node)
        ]
        assert switch_hops, "route must cross the switch fabric"
        seen = [fabric.select_lanes(plan) for _ in range(6)]
        for i in switch_hops:
            assert [lanes[i] for lanes in seen] == [0, 1, 2, 0, 1, 2]

    @given(
        n_lanes=st.integers(min_value=2, max_value=4),
        n_launches=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_no_lane_starves(self, n_lanes, n_launches):
        """Fairness: after k same-plan launches every switch channel's
        per-lane counts differ by at most one — no lane starves."""
        fabric, topo, roles = _fig6_fabric(lanes=n_lanes,
                                           lane_policy="roundrobin")
        plan = _plan(fabric, topo, roles["host1"], roles["host2"])
        counts: dict[int, dict[int, int]] = {}
        for _ in range(n_launches):
            for i, lane in enumerate(fabric.select_lanes(plan)):
                ch = plan.channels[i]
                if topo.is_switch(ch.from_node) and topo.is_switch(ch.to_node):
                    per = counts.setdefault(i, {})
                    per[lane] = per.get(lane, 0) + 1
        for per in counts.values():
            if n_launches >= n_lanes:
                assert len(per) == n_lanes  # every lane used
            assert max(per.values()) - min(per.values()) <= 1


class TestEscapePolicy:
    def test_overflow_counted_when_fabric_too_small(self):
        fabric, topo, roles = _fig6_fabric(lanes=2, lane_policy="escape")
        policy = fabric.lane_policy
        assert isinstance(policy, EscapeLanePolicy)
        # Walk every host pair; fig6's up*/down* routes may descend
        # more than once, and any clamped walk must be counted.
        hosts = topo.hosts()
        router = UpDownRouter(topo, build_orientation(topo))
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                for seg in router.itb_route(src, dst).segments:
                    plan = fabric.flight_plan(seg)
                    lanes = policy.lanes_for(plan, fabric)
                    assert all(0 <= l < 2 for l in lanes)
        # Memoized: re-asking for a seen plan does not re-walk.
        before = policy.overflows
        for seg_plan in list(fabric._plans.values()):
            policy.lanes_for(seg_plan, fabric)
        assert policy.overflows == before


class TestIdleLaneInvisibility:
    """lanes=1 oracle equivalence: the single-lane fabric is the
    pre-refactor behaviour (pinned byte-for-byte by the goldens and
    span-dump tests); a second lane that no policy ever selects must
    reproduce it exactly, for arbitrary contended traffic."""

    @staticmethod
    def _run(topo_seed, traffic_seed, rate, lanes):
        from repro.harness.workloads import drive_traffic

        topo = random_irregular(4, seed=topo_seed, hosts_per_switch=2)
        config = NetworkConfig(
            firmware="itb", routing="itb", timings=_quiet(),
            recv_buffer_kind="pool", pool_bytes=256 * 1024,
            lanes=lanes, lane_policy="fixed",
        )
        net = build_network(topo, config=config)
        stats = drive_traffic(
            net, rate_bytes_per_ns_per_host=rate, packet_size=512,
            duration_ns=20_000.0, warmup_ns=0.0, seed=traffic_seed,
        )
        return net, stats

    @given(
        topo_seed=st.integers(min_value=0, max_value=50),
        traffic_seed=st.integers(min_value=0, max_value=50),
        rate=st.sampled_from([0.02, 0.06, 0.12]),
    )
    @settings(max_examples=10, deadline=None)
    def test_unused_second_lane_changes_nothing(self, topo_seed,
                                                traffic_seed, rate):
        _net1, base = self._run(topo_seed, traffic_seed, rate, lanes=1)
        net2, laned = self._run(topo_seed, traffic_seed, rate, lanes=2)
        assert laned.delivered_packets == base.delivered_packets
        assert laned.offered_packets == base.offered_packets
        assert laned.latencies_ns == base.latencies_ns
        # The second lane really was idle the whole run.
        assert all(
            busy == 0
            for (_l, _d, lane), busy
            in net2.fabric.lane_utilization_snapshot().items()
            if lane == 1
        )


class TestLanedTraffic:
    def test_multi_lane_contended_traffic_drains(self):
        """Round-robin over 2 lanes on a contended random fabric:
        every packet delivered, all lanes release at the end."""
        from repro.harness.workloads import drive_traffic

        topo = random_irregular(4, seed=3, hosts_per_switch=2)
        config = NetworkConfig(
            firmware="itb", routing="itb", timings=_quiet(),
            recv_buffer_kind="pool", pool_bytes=256 * 1024,
            lanes=2, lane_policy="roundrobin",
        )
        net = build_network(topo, config=config)
        stats = drive_traffic(
            net, rate_bytes_per_ns_per_host=0.08, packet_size=512,
            duration_ns=30_000.0, warmup_ns=0.0, seed=9,
        )
        assert stats.delivered_packets > 0
        net.sim.run(until=net.sim.now + 1_000_000)
        assert all(v == 0
                   for v in net.fabric.utilization_snapshot().values())
        assert not net.fabric._claimed_by
