"""Tests for NIC packet buffering (fixed slots vs circular pool)."""

from __future__ import annotations

import pytest

from repro.mcp.buffers import BufferPool, FixedBuffers, NicBufferError


class TestFixedBuffers:
    def test_slot_accounting(self):
        buf = FixedBuffers(n_slots=2)
        assert buf.can_accept() and buf.free_slots == 2
        assert buf.try_accept("p1", 100)
        assert buf.try_accept("p2", 200)
        assert not buf.can_accept()
        assert buf.occupancy_bytes == 300

    def test_reject_counts(self):
        buf = FixedBuffers(n_slots=1)
        buf.try_accept("p1", 10)
        assert not buf.try_accept("p2", 10)
        assert buf.accepted == 1 and buf.rejected == 1

    def test_release_frees_slot(self):
        buf = FixedBuffers(n_slots=1)
        buf.try_accept("p1", 10)
        buf.release("p1")
        assert buf.try_accept("p2", 10)

    def test_release_unheld_is_error(self):
        buf = FixedBuffers(n_slots=1)
        with pytest.raises(NicBufferError):
            buf.release("ghost")

    def test_release_specific_packet(self):
        buf = FixedBuffers(n_slots=2)
        buf.try_accept("p1", 10)
        buf.try_accept("p2", 20)
        buf.release("p1")
        assert buf.occupancy_bytes == 20

    def test_never_drops(self):
        assert not FixedBuffers(2).drops_when_full()

    def test_needs_at_least_one_slot(self):
        with pytest.raises(ValueError):
            FixedBuffers(n_slots=0)


class TestBufferPool:
    def test_byte_accounting(self):
        pool = BufferPool(capacity_bytes=1000)
        assert pool.try_accept("p1", 400)
        assert pool.try_accept("p2", 500)
        assert pool.occupancy_bytes == 900
        assert pool.free_bytes == 100
        assert pool.n_packets == 2

    def test_flush_when_full(self):
        pool = BufferPool(capacity_bytes=1000)
        pool.try_accept("p1", 800)
        assert not pool.try_accept("p2", 300)
        assert pool.flushed == 1
        assert pool.accepted == 1

    def test_exact_fit_accepted(self):
        pool = BufferPool(capacity_bytes=100)
        assert pool.try_accept("p1", 100)
        assert pool.free_bytes == 0

    def test_release_reclaims_space(self):
        pool = BufferPool(capacity_bytes=500)
        pool.try_accept("p1", 500)
        pool.release("p1")
        assert pool.try_accept("p2", 500)

    def test_out_of_order_release(self):
        pool = BufferPool(capacity_bytes=300)
        pool.try_accept("p1", 100)
        pool.try_accept("p2", 100)
        pool.try_accept("p3", 100)
        pool.release("p2")  # middle packet re-injected first
        assert pool.occupancy_bytes == 200
        assert pool.try_accept("p4", 100)

    def test_release_unheld_is_error(self):
        pool = BufferPool(capacity_bytes=10)
        with pytest.raises(NicBufferError):
            pool.release("ghost")

    def test_drops_when_full(self):
        assert BufferPool(10).drops_when_full()

    def test_can_accept_query(self):
        pool = BufferPool(capacity_bytes=100)
        assert pool.can_accept(100)
        assert not pool.can_accept(101)

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_bytes=0)
