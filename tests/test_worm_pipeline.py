"""Multi-hop cut-through pipeline validation.

These tests hand-compute expected latencies across several switches
and port-kind combinations, pinning down the timing model the harness
experiments depend on.
"""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.mcp.packet_format import encode_packet
from repro.network.fabric import Fabric
from repro.network.worm import Worm
from repro.routing.routes import SourceRoute
from repro.sim.engine import Simulator
from repro.topology.graph import PortKind, Topology


class Recorder:
    def __init__(self):
        self.header_at = None
        self.complete_at = None

    def on_header(self, worm, t):
        self.header_at = t
        return None

    def on_complete(self, worm, t):
        self.complete_at = t


def chain(n_switches: int, kinds: list[PortKind]):
    """Chain of switches; kinds[i] is the cable kind of hop i
    (kinds[0] = host NIC cable, last = destination NIC cable)."""
    assert len(kinds) == n_switches + 1
    topo = Topology()
    sws = [topo.add_switch(n_ports=4) for _ in range(n_switches)]
    src = topo.add_host(name="src")
    dst = topo.add_host(name="dst")
    topo.connect(sws[0], 0, src, 0, kind=kinds[0])
    for i in range(n_switches - 1):
        topo.connect(sws[i], 1, sws[i + 1], 0, kind=kinds[i + 1])
    topo.connect(sws[-1], 1, dst, 0, kind=kinds[-1])
    sim = Simulator()
    fabric = Fabric(sim, topo, Timings())
    ports = tuple([1] * n_switches)
    seg = SourceRoute(src=src, dst=dst, ports=ports,
                      switch_path=tuple(sws))
    return sim, fabric, seg


def expected_times(timings: Timings, kinds: list[PortKind],
                   encoded_len: int, n_switches: int):
    """Hand-rolled pipeline math for an unloaded chain."""
    prop = timings.propagation(3.0)
    head = timings.link_byte_ns + prop  # first byte to switch 0 input
    for i in range(n_switches):
        in_kind = kinds[i]
        out_kind = kinds[i + 1]
        head += timings.fall_through(in_kind, out_kind) + prop
    wire_at_dst = encoded_len - n_switches  # one route byte per switch
    return head, head + timings.wire_time(wire_at_dst)


@pytest.mark.parametrize("n_switches", [1, 2, 3, 5])
def test_san_chain_latency(n_switches):
    kinds = [PortKind.SAN] * (n_switches + 1)
    sim, fabric, seg = chain(n_switches, kinds)
    rec = Recorder()
    image = encode_packet(seg, b"p" * 100)
    Worm(sim, fabric, seg, image, observer=rec).launch()
    sim.run()
    t = fabric.timings
    head, complete = expected_times(t, kinds, len(image.data), n_switches)
    assert rec.header_at == pytest.approx(
        head + t.wire_time(t.early_recv_bytes))
    assert rec.complete_at == pytest.approx(complete)


def test_mixed_port_kinds_change_latency():
    """LAN hops cost more fall-through than SAN hops."""
    results = {}
    for label, kinds in (
        ("san", [PortKind.SAN] * 4),
        ("lan", [PortKind.LAN] * 4),
    ):
        sim, fabric, seg = chain(3, kinds)
        rec = Recorder()
        image = encode_packet(seg, b"x" * 10)
        Worm(sim, fabric, seg, image, observer=rec).launch()
        sim.run()
        results[label] = rec.complete_at
    t = Timings()
    expected_delta = 3 * (
        t.fall_through(PortKind.LAN, PortKind.LAN)
        - t.fall_through(PortKind.SAN, PortKind.SAN)
    )
    assert results["lan"] - results["san"] == pytest.approx(expected_delta)


def test_long_message_dominated_by_wire_time():
    """For big payloads the pipeline converges to length/bandwidth."""
    kinds = [PortKind.SAN] * 3
    sim, fabric, seg = chain(2, kinds)
    rec = Recorder()
    image = encode_packet(seg, 4096)
    Worm(sim, fabric, seg, image, observer=rec).launch()
    sim.run()
    t = fabric.timings
    wire = t.wire_time(4096)
    assert rec.complete_at > wire
    assert rec.complete_at < wire * 1.05  # header costs are noise at 4 KB


def test_back_to_back_worms_pipeline_on_the_wire():
    """A second packet can enter a channel the moment the first's tail
    left it: per-channel occupancy, not per-path locking."""
    kinds = [PortKind.SAN] * 2
    sim, fabric, seg = chain(1, kinds)
    recs = [Recorder(), Recorder()]
    for rec in recs:
        image = encode_packet(seg, b"y" * 500)
        Worm(sim, fabric, seg, image, observer=rec).launch()
    sim.run()
    first, second = sorted(r.complete_at for r in recs)
    gap = second - first
    # The second waited for the first to fully drain (same source NIC
    # channel), so the gap is about one full packet time, not two.
    one_packet = fabric.timings.wire_time(500)
    assert gap < one_packet * 1.5
