"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_callbacks_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("b"))
        sim.schedule(5, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 20.0

    def test_equal_times_fifo(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(7, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == []
        assert sim.now == 50.0
        sim.run()
        assert fired == [1]

    def test_max_events_guard(self, sim):
        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_priority_breaks_ties(self, sim):
        fired = []
        sim.schedule(5, lambda: fired.append("low"), priority=1)
        sim.schedule(5, lambda: fired.append("high"), priority=0)
        sim.run()
        assert fired == ["high", "low"]


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event("x")
        seen = []

        def proc():
            value = yield ev
            seen.append(value)

        sim.process(proc())
        sim.schedule(5, lambda: ev.succeed(42))
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("nope"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_trigger_still_runs(self, sim):
        ev = sim.event()
        ev.succeed("v")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["v"]

    def test_failed_event_raises_in_waiter(self, sim):
        ev = sim.event()

        def proc():
            with pytest.raises(ValueError):
                yield ev
            return "survived"

        p = sim.process(proc())
        sim.schedule(1, lambda: ev.fail(ValueError("boom")))
        sim.run()
        assert p.returned == "survived"

    def test_ok_property(self, sim):
        ev = sim.event()
        assert not ev.ok
        ev.succeed()
        assert ev.ok
        ev2 = sim.event()
        try:
            raise RuntimeError("x")
        except RuntimeError as e:
            ev2.fail(e)
        assert not ev2.ok


class TestProcesses:
    def test_timeout_advances_clock(self, sim):
        times = []

        def proc():
            yield Timeout(5)
            times.append(sim.now)
            yield Timeout(7.5)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [5.0, 12.5]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-0.1)

    def test_join_returns_value(self, sim):
        def child():
            yield Timeout(3)
            return "result"

        def parent():
            value = yield sim.process(child())
            return value

        p = sim.process(parent())
        sim.run()
        assert p.returned == "result"
        assert not p.alive

    def test_join_already_finished_process(self, sim):
        def child():
            yield Timeout(1)
            return 7

        c = sim.process(child())

        def parent():
            yield Timeout(10)  # child long done
            value = yield c
            return value

        p = sim.process(parent())
        sim.run()
        assert p.returned == 7

    def test_crash_propagates_from_run(self, sim):
        def bad():
            yield Timeout(1)
            raise RuntimeError("firmware bug")

        sim.process(bad())
        with pytest.raises(SimulationError, match="firmware bug"):
            sim.run()

    def test_yield_garbage_is_error(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="non-waitable"):
            sim.run()

    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def waiter():
            try:
                yield Timeout(1000)
            except Interrupt as i:
                causes.append((sim.now, i.cause))
                return "interrupted"

        p = sim.process(waiter())

        def interrupter():
            yield Timeout(5)
            p.interrupt(cause="stop now")

        sim.process(interrupter())
        sim.run()
        # Interrupt delivered at t=5, long before the 1000 ns timeout
        # (whose stale timer pops harmlessly later).
        assert causes == [(5.0, "stop now")]
        assert p.returned == "interrupted"

    def test_interrupt_dead_process_is_error(self, sim):
        def quick():
            yield Timeout(1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_immediate_return_process(self, sim):
        def noop():
            return "done"
            yield  # pragma: no cover

        p = sim.process(noop())
        sim.run()
        assert p.returned == "done"


class TestComposites:
    def test_all_of_waits_for_all(self, sim):
        e1, e2 = sim.event(), sim.event()
        seen = []

        def proc():
            values = yield AllOf([e1, e2])
            seen.append((sim.now, values))

        sim.process(proc())
        sim.schedule(3, lambda: e1.succeed("a"))
        sim.schedule(9, lambda: e2.succeed("b"))
        sim.run()
        assert seen == [(9.0, ["a", "b"])]

    def test_all_of_empty_fires_immediately(self, sim):
        seen = []

        def proc():
            values = yield AllOf([])
            seen.append(values)

        sim.process(proc())
        sim.run()
        assert seen == [[]]

    def test_any_of_returns_first(self, sim):
        e1, e2 = sim.event(), sim.event()
        seen = []

        def proc():
            idx, value = yield AnyOf([e1, e2])
            seen.append((sim.now, idx, value))

        sim.process(proc())
        sim.schedule(4, lambda: e2.succeed("fast"))
        sim.schedule(8, lambda: e1.succeed("slow"))
        sim.run()
        assert seen == [(4.0, 1, "fast")]


class TestRunUntilEvent:
    def test_returns_value(self, sim):
        ev = sim.event()
        sim.schedule(12, lambda: ev.succeed("payload"))
        assert sim.run_until_event(ev) == "payload"
        assert sim.now == 12.0

    def test_deadlock_detected(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_event(ev)

    def test_failed_event_raises(self, sim):
        ev = sim.event()
        sim.schedule(1, lambda: ev.fail(ValueError("bad")))
        with pytest.raises(ValueError):
            sim.run_until_event(ev)
