"""Cross-checks: the timing model's constants vs the paper's claims."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.harness.paper_claims import CLAIMS, Claim, claim


class TestRegistry:
    def test_lookup(self):
        c = claim("f7.mean_overhead_ns")
        assert c.value == 125.0
        with pytest.raises(KeyError, match="known"):
            claim("nonsense")

    def test_bands_contain_nominal(self):
        for c in CLAIMS.values():
            assert c.low <= c.value <= c.high, c.key

    def test_holds(self):
        c = Claim("k", "s", "src", 10.0, 5.0, 15.0, "ns")
        assert c.holds(10.0) and c.holds(5.0) and c.holds(15.0)
        assert not c.holds(4.9) and not c.holds(15.1)

    def test_describe(self):
        c = claim("f8.overhead_ns")
        assert "1300" in c.describe()
        assert "OK" in c.describe(1350.0)
        assert "VIOLATED" in c.describe(9999.0)

    def test_sources_cite_the_paper(self):
        for c in CLAIMS.values():
            assert "Section" in c.source, c.key


class TestTimingModelConsistency:
    """The calibrated constants must land inside the paper's bands —
    these tests catch calibration drift at unit-test speed (the full
    end-to-end checks live in the harness tests and benchmarks)."""

    def test_itb_check_cost(self):
        assert claim("f7.mean_overhead_ns").holds(Timings().itb_check_ns)

    def test_itb_forward_cost(self):
        # The firmware part alone must already sit inside the band
        # (wire effects only add a few tens of ns).
        assert claim("f8.overhead_ns").holds(Timings().itb_forward_ns + 50)

    def test_early_recv_bytes(self):
        assert claim("method.early_recv_bytes").holds(
            Timings().early_recv_bytes)

    def test_buffer_count(self):
        assert claim("method.mcp_buffers").holds(Timings().mcp_buffers)

    def test_prior_estimate_reachable_by_ablation(self):
        """The [2,3] regime (275 + 200 ns) must fall in its band."""
        t = Timings().with_overrides(itb_early_recv_cycles=18,
                                     itb_program_dma_cycles=13)
        assert claim("f8.prior_estimate_ns").holds(t.itb_forward_ns + 50)


class TestPathConstants:
    def test_fig8_paths_cross_five_switches(self):
        from repro.harness.paths import fig6_paths
        from repro.topology.generators import fig6_testbed

        topo, roles = fig6_testbed()
        paths = fig6_paths(topo, roles)
        c = claim("method.fig8_switch_crossings")
        assert c.holds(paths.ud5.n_switches)
        assert c.holds(paths.itb5.n_switches)

    def test_fig7_average_crossings(self):
        from repro.harness.paths import fig6_paths
        from repro.topology.generators import fig6_testbed

        topo, roles = fig6_testbed()
        paths = fig6_paths(topo, roles)
        avg = (paths.fig7_fwd.n_switches + paths.rev2.n_switches) / 2
        assert claim("method.fig7_avg_crossings").holds(avg)
