"""Tests for topology export (DOT / text)."""

from __future__ import annotations

from repro.routing.spanning_tree import build_orientation
from repro.topology.export import to_dot, to_text
from repro.topology.generators import fig1_topology, fig6_testbed


class TestDot:
    def test_undirected_graph(self):
        topo, _ = fig6_testbed()
        dot = to_dot(topo)
        assert dot.startswith("graph myrinet {")
        assert dot.rstrip().endswith("}")
        # One node statement per node, one edge per cable.
        assert dot.count("shape=box") == len(topo.switches())
        assert dot.count("shape=ellipse") == len(topo.hosts())
        assert dot.count(" -- ") == len(topo.links)

    def test_lan_cables_dashed(self):
        topo, _ = fig6_testbed()
        dot = to_dot(topo)
        assert "style=dashed" in dot and "style=solid" in dot

    def test_oriented_digraph(self):
        topo, roles = fig1_topology()
        orientation = build_orientation(topo, root=roles["sw0"])
        dot = to_dot(topo, orientation)
        assert dot.startswith("digraph")
        assert "(root)" in dot
        assert "level 0" in dot and "level 2" in dot
        # Host links carry no orientation: rendered dir=none.
        assert dot.count("dir=none") == len(topo.hosts())

    def test_arrows_point_up(self):
        topo, roles = fig1_topology()
        orientation = build_orientation(topo, root=roles["sw0"])
        dot = to_dot(topo, orientation)
        # The 0-1 cable's up end is the root: edge must be n1 -> n0.
        assert f"n{roles['sw1']} -> n{roles['sw0']}" in dot


class TestText:
    def test_summary_lists_every_port(self):
        topo, roles = fig6_testbed()
        text = to_text(topo)
        assert "2 switches" in text and "3 hosts" in text
        # All cabled switch ports listed.
        cabled = sum(len(topo.ports_of(s)) for s in topo.switches())
        assert text.count("port ") - text.count("own port") >= cabled

    def test_loopback_described(self):
        topo, _ = fig6_testbed()
        text = to_text(topo)
        assert "loopback to own port" in text

    def test_orientation_annotations(self):
        topo, roles = fig1_topology()
        orientation = build_orientation(topo, root=roles["sw0"])
        text = to_text(topo, orientation)
        assert "root]" in text
        assert "(up)" in text and "(down)" in text
