"""Tests for the process-safe route-table cache."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.routing.cache import (RouteCache, default_route_cache,
                                 topology_signature)
from repro.routing.routes import RouteError
from repro.topology.generators import fig6_testbed, random_irregular


class TestTopologySignature:
    def test_stable_across_rebuilds(self):
        a = random_irregular(8, seed=11)
        b = random_irregular(8, seed=11)
        assert a is not b
        assert topology_signature(a) == topology_signature(b)

    def test_differs_across_seeds(self):
        a = random_irregular(8, seed=11)
        b = random_irregular(8, seed=12)
        assert topology_signature(a) != topology_signature(b)

    def test_differs_across_shapes(self):
        a = random_irregular(8, seed=11)
        b = random_irregular(16, seed=11)
        assert topology_signature(a) != topology_signature(b)


class TestRouteCache:
    def test_computes_once_per_key(self):
        cache = RouteCache()
        topo = random_irregular(8, seed=11)
        cache.routes_for(topo, "updown")
        assert cache.misses == 1 and cache.hits == 0
        # A structurally identical rebuild hits the same entry.
        rebuilt = random_irregular(8, seed=11)
        cache.routes_for(rebuilt, "updown")
        assert cache.misses == 1 and cache.hits == 1
        # A different routing policy is a different entry.
        cache.routes_for(topo, "itb")
        assert cache.misses == 2
        assert len(cache) == 2

    def test_root_is_part_of_the_key(self):
        cache = RouteCache()
        topo = random_irregular(8, seed=11)
        cache.routes_for(topo, "updown", root=0)
        cache.routes_for(topo, "updown", root=1)
        assert cache.misses == 2

    def test_unknown_routing_rejected(self):
        cache = RouteCache()
        topo, _roles = fig6_testbed()
        with pytest.raises(RouteError):
            cache.routes_for(topo, "teleport")

    def test_tables_are_fresh_per_consumer(self):
        cache = RouteCache()
        topo = random_irregular(8, seed=11)
        _o1, tables1 = cache.tables_for(topo, "updown")
        _o2, tables2 = cache.tables_for(topo, "updown")
        hosts = topo.hosts()
        src, dst = hosts[0], hosts[1]
        # Stamping an override into one consumer's table must not
        # leak into the next consumer's: overwrite (src, dst) in
        # tables1 with the ITB-policy route for the same pair.
        _orient, ud_pairs = cache.routes_for(topo, "updown")
        _orient2, itb_pairs = cache.routes_for(topo, "itb")
        tables1[src].install(dst, itb_pairs[(src, dst)])
        assert tables2[src].lookup(dst) == ud_pairs[(src, dst)]

    def test_reset_stats_keeps_entries(self):
        cache = RouteCache()
        topo = random_irregular(8, seed=11)
        cache.routes_for(topo, "updown")
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert len(cache) == 1

    def test_default_cache_is_singleton(self):
        assert default_route_cache() is default_route_cache()


class TestCachedBuildEquivalence:
    def test_cached_build_matches_uncached(self):
        """The same measurement on cached and uncached builds agrees
        exactly — the cache changes where routes come from, not what
        they are."""
        cache = RouteCache()
        plain = build_network("fig6")
        cached = build_network("fig6", route_cache=cache)
        r_plain = plain.ping_pong("host1", "host2", size=64, iterations=3)
        r_cached = cached.ping_pong("host1", "host2", size=64, iterations=3)
        assert r_cached.mean_ns == r_plain.mean_ns

    def test_second_cached_build_hits(self):
        cache = RouteCache()
        build_network("fig6", route_cache=cache)
        misses_after_first = cache.misses
        build_network("fig6", route_cache=cache)
        assert cache.misses == misses_after_first
        assert cache.hits >= 1
