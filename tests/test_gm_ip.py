"""Tests for IP-over-GM encapsulation (fragmentation, reassembly,
best-effort contract, TTL over ITB hops)."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.ip import FRAGMENT_PAYLOAD, IpEndpoint
from repro.harness.paths import fig6_paths


def build(routing="updown", **kw):
    cfg = NetworkConfig(
        firmware="itb", routing=routing, reliable=False,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network("fig6", config=cfg)


def endpoints(net):
    a = IpEndpoint(net.gm("host1"))
    b = IpEndpoint(net.gm("host2"))
    got = []
    b.on_datagram(got.append)
    return a, b, got


class TestSingleFragment:
    def test_small_datagram_one_fragment(self):
        net = build()
        a, b, got = endpoints(net)
        a.send(net.roles["host2"], 512)
        net.sim.run(until=5_000_000)
        assert len(got) == 1
        assert got[0].length == 512
        assert a.stats.fragments_sent == 1
        assert b.stats.datagrams_delivered == 1

    def test_zero_length_datagram(self):
        net = build()
        a, b, got = endpoints(net)
        a.send(net.roles["host2"], 0)
        net.sim.run(until=5_000_000)
        assert len(got) == 1 and got[0].length == 0

    def test_negative_length_rejected(self):
        net = build()
        a, _b, _got = endpoints(net)
        with pytest.raises(ValueError):
            a.send(net.roles["host2"], -1)

    def test_gm_traffic_unaffected(self):
        """Non-IP GM messages still reach the GM receive path."""
        net = build()
        _a, _b, _got = endpoints(net)
        gm_got = []

        def rx():
            msg = yield net.gm("host2").receive()
            gm_got.append(msg)

        net.sim.process(rx(), name="rx")
        net.gm("host1").send(net.roles["host2"], 128)
        net.sim.run(until=5_000_000)
        assert len(gm_got) == 1


class TestFragmentation:
    def test_large_datagram_fragment_count(self):
        net = build()
        a, b, got = endpoints(net)
        size = 3 * FRAGMENT_PAYLOAD - 100
        a.send(net.roles["host2"], size)
        net.sim.run(until=20_000_000)
        assert len(got) == 1 and got[0].length == size
        assert a.stats.fragments_sent == 3
        assert b.stats.fragments_received == 3

    def test_exact_fragment_boundary(self):
        net = build()
        a, b, got = endpoints(net)
        a.send(net.roles["host2"], FRAGMENT_PAYLOAD)
        net.sim.run(until=10_000_000)
        assert len(got) == 1
        assert a.stats.fragments_sent == 1

    def test_interleaved_datagrams_reassemble_independently(self):
        net = build()
        a, b, got = endpoints(net)
        a.send(net.roles["host2"], 2 * FRAGMENT_PAYLOAD)
        a.send(net.roles["host2"], 3 * FRAGMENT_PAYLOAD)
        net.sim.run(until=50_000_000)
        assert sorted(d.length for d in got) == \
            [2 * FRAGMENT_PAYLOAD, 3 * FRAGMENT_PAYLOAD]
        assert b.partial_reassemblies == 0


class TestBestEffort:
    def test_lost_fragment_loses_the_datagram(self):
        """IP's contract: no retransmission — a lost fragment expires
        the whole reassembly."""
        from repro.network.faults import FaultPlan, install_fault_plan

        net = build()
        a, b, got = endpoints(net)
        b.reassembly_timeout_ns = 1_000_000.0
        plan = FaultPlan(loss_probability=0.0, seed=1)
        count = {"n": 0}

        def lose_second(_pid):
            count["n"] += 1
            if count["n"] == 2:
                plan.lost += 1
                return "lost"
            return "ok"

        plan.roll = lose_second  # type: ignore[method-assign]
        install_fault_plan(net, plan)
        a.send(net.roles["host2"], 3 * FRAGMENT_PAYLOAD)
        net.sim.run(until=50_000_000)
        assert got == []
        assert b.stats.reassembly_timeouts == 1
        assert b.partial_reassemblies == 0

    def test_unaffected_datagram_still_delivers(self):
        from repro.network.faults import FaultPlan, install_fault_plan

        net = build()
        a, b, got = endpoints(net)
        b.reassembly_timeout_ns = 1_000_000.0
        plan = FaultPlan(loss_probability=0.0, seed=1)
        count = {"n": 0}

        def lose_first(_pid):
            count["n"] += 1
            return "lost" if count["n"] == 1 else "ok"

        plan.roll = lose_first  # type: ignore[method-assign]
        install_fault_plan(net, plan)
        a.send(net.roles["host2"], 100)       # fragment lost
        a.send(net.roles["host2"], 200)       # delivers
        net.sim.run(until=50_000_000)
        assert [d.length for d in got] == [200]


class TestTtl:
    def test_itb_hop_decrements_ttl(self):
        net = build()
        paths = fig6_paths(net.topo, net.roles)
        # Stamp the ITB route for host1 -> host2 so IP fragments take
        # an in-transit hop.
        h1, h2 = net.roles["host1"], net.roles["host2"]
        net.nics[h1].route_table.install(h2, paths.itb5)
        a, b, got = endpoints(net)
        a.send(h2, 256, ttl=5)
        net.sim.run(until=10_000_000)
        assert len(got) == 1
        assert got[0].ttl == 4  # one ITB store-and-forward

    def test_ttl_exhaustion_drops(self):
        net = build()
        paths = fig6_paths(net.topo, net.roles)
        h1, h2 = net.roles["host1"], net.roles["host2"]
        net.nics[h1].route_table.install(h2, paths.itb5)
        a, b, got = endpoints(net)
        a.send(h2, 256, ttl=1)  # the single ITB hop exhausts it
        net.sim.run(until=10_000_000)
        assert got == []
        assert b.stats.ttl_drops == 1
