"""Tests for the Chrome-tracing export."""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.chrome_trace import (spans_to_chrome_trace,
                                        to_chrome_trace, write_chrome_trace)
from repro.harness.paths import fig6_paths
from repro.obs.tracing import SpanTracer
from repro.sim.trace import Trace


def traced_run():
    cfg = NetworkConfig(
        firmware="itb", routing="updown", trace=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    paths = fig6_paths(net.topo, net.roles)
    done = net.sim.event("one")
    net.nics[net.roles["host1"]].firmware.host_send(
        dst=net.roles["host2"], payload_len=256, gm={"last": True},
        on_delivered=lambda tp: done.succeed(tp), route=paths.itb5,
    )
    tp = net.sim.run_until_event(done)
    return net, tp


class TestConversion:
    def test_every_record_becomes_an_instant(self):
        net, _tp = traced_run()
        events = to_chrome_trace(net.trace, durations=False)
        assert len(events) == len(net.trace)
        assert all(e["ph"] == "i" for e in events)

    def test_timestamps_in_microseconds(self):
        trace = Trace()
        trace.emit(2_000.0, "nic[x]", "inject", pid=1, seg=0)
        events = to_chrome_trace(trace, durations=False)
        assert events[0]["ts"] == pytest.approx(2.0)

    def test_components_become_rows(self):
        net, _tp = traced_run()
        events = to_chrome_trace(net.trace)
        tids = {e["tid"] for e in events}
        assert "nic[host1]" in tids
        assert "nic[itb]" in tids
        assert "nic[host2]" in tids

    def test_packet_duration_pair_balanced(self):
        net, tp = traced_run()
        events = to_chrome_trace(net.trace, durations=True)
        begins = [e for e in events if e.get("ph") == "b"
                  and e.get("id") == tp.pid]
        ends = [e for e in events if e.get("ph") == "e"
                and e.get("id") == tp.pid]
        assert len(begins) == 1 and len(ends) == 1
        assert begins[0]["ts"] <= ends[0]["ts"]

    def test_dropped_packet_closes_span(self):
        """A packet dropped by the original firmware (unknown ITB
        type) still gets a balanced span."""
        cfg = NetworkConfig(
            firmware="original", routing="updown", trace=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        paths = fig6_paths(net.topo, net.roles)
        done = net.sim.event("one")
        net.nics[net.roles["host1"]].firmware.host_send(
            dst=net.roles["host2"], payload_len=64, gm={"last": True},
            on_delivered=lambda tp: done.succeed(tp), route=paths.itb5,
        )
        tp = net.sim.run_until_event(done)
        assert tp.dropped
        events = to_chrome_trace(net.trace, durations=True)
        phases = [e["ph"] for e in events if e.get("id") == tp.pid]
        assert phases.count("b") == phases.count("e") == 1


def span_traced_run():
    """A reliable GM send with the causal span tracer attached."""
    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=True, trace=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    tracer = SpanTracer()
    net.fabric.tracer = tracer
    a, b = net.gm("host1"), net.gm("host2")
    got = []

    def rx():
        while True:
            msg = yield b.receive()
            got.append(msg.tag)

    net.sim.process(rx(), name="rx")
    a.send(b.host, 512, tag=1)
    net.sim.run(until=10_000_000)
    assert got == [1]
    return net, tracer


class TestSpanEvents:
    """Round-trip invariants of the causal-span export: every async
    begin has exactly one matching end under the same id, timestamps
    are monotonic per track, and cross-component hand-offs pair one
    flow start with one flow finish."""

    def test_async_pairs_matched_by_id(self):
        _net, tracer = span_traced_run()
        events = spans_to_chrome_trace(tracer.spans)
        begins = defaultdict(int)
        ends = defaultdict(int)
        for e in events:
            if e.get("cat") != "span":
                continue
            if e["ph"] == "b":
                begins[e["id"]] += 1
            elif e["ph"] == "e":
                ends[e["id"]] += 1
        assert begins, "no span events exported"
        assert begins == ends
        assert all(n == 1 for n in begins.values())

    def test_pair_timestamps_ordered(self):
        _net, tracer = span_traced_run()
        events = spans_to_chrome_trace(tracer.spans)
        by_id = defaultdict(dict)
        for e in events:
            if e.get("cat") == "span":
                by_id[e["id"]][e["ph"]] = e["ts"]
        for span_id, phases in by_id.items():
            assert phases["b"] <= phases["e"], span_id

    def test_timestamps_monotonic_per_track(self):
        """Within one component row, begin events appear in
        nondecreasing timestamp order (spans are recorded in creation
        order, which follows simulated time)."""
        _net, tracer = span_traced_run()
        events = spans_to_chrome_trace(tracer.spans)
        per_tid = defaultdict(list)
        for e in events:
            if e.get("cat") == "span" and e["ph"] == "b":
                per_tid[e["tid"]].append(e["ts"])
        assert per_tid
        for tid, stamps in per_tid.items():
            assert stamps == sorted(stamps), tid

    def test_flow_events_pair_across_components(self):
        _net, tracer = span_traced_run()
        events = spans_to_chrome_trace(tracer.spans)
        starts = {e["id"]: e for e in events
                  if e.get("cat") == "flow" and e["ph"] == "s"}
        finishes = {e["id"]: e for e in events
                    if e.get("cat") == "flow" and e["ph"] == "f"}
        assert starts, "no cross-component hand-offs exported"
        assert set(starts) == set(finishes)
        for flow_id, s in starts.items():
            f = finishes[flow_id]
            assert s["ts"] == f["ts"]
            assert s["tid"] != f["tid"]  # genuinely cross-component
            assert f["bp"] == "e"

    def test_open_spans_skipped(self):
        tracer = SpanTracer()
        tracer.begin("message", 0.0)  # never closed
        assert spans_to_chrome_trace(tracer.spans) == []

    def test_full_export_includes_counters_and_spans(self, tmp_path):
        """write_chrome_trace merges instant, counter, async-span, and
        flow events into one loadable document."""
        from repro.obs.attach import instrument_network

        cfg = NetworkConfig(
            firmware="itb", routing="updown", reliable=True, trace=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        tracer = SpanTracer()
        net.fabric.tracer = tracer
        telemetry = instrument_network(net, sample_interval_ns=1_000.0,
                                       profile=False)
        a, b = net.gm("host1"), net.gm("host2")

        def rx():
            yield b.receive()

        net.sim.process(rx(), name="rx")
        a.send(b.host, 512, tag=1)
        net.sim.run(until=20_000.0)
        telemetry.stop()
        series = telemetry.sampler.all_series()
        path = write_chrome_trace(net.trace, tmp_path / "trace.json",
                                  series=series, spans=tracer.spans)
        blob = json.loads(path.read_text())
        phases = {e["ph"] for e in blob["traceEvents"]}
        assert {"i", "C", "b", "e", "s", "f"} <= phases


class TestFileOutput:
    def test_written_file_is_loadable_json(self, tmp_path):
        net, _tp = traced_run()
        path = write_chrome_trace(net.trace, tmp_path / "trace.json")
        blob = json.loads(path.read_text())
        assert "traceEvents" in blob
        assert blob["displayTimeUnit"] == "ns"
        assert len(blob["traceEvents"]) > 0

    def test_empty_trace_ok(self, tmp_path):
        path = write_chrome_trace(Trace(), tmp_path / "empty.json")
        blob = json.loads(path.read_text())
        assert blob["traceEvents"] == []
