"""Tests for the Chrome-tracing export."""

from __future__ import annotations

import json

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.chrome_trace import to_chrome_trace, write_chrome_trace
from repro.harness.paths import fig6_paths
from repro.sim.trace import Trace


def traced_run():
    cfg = NetworkConfig(
        firmware="itb", routing="updown", trace=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    paths = fig6_paths(net.topo, net.roles)
    done = net.sim.event("one")
    net.nics[net.roles["host1"]].firmware.host_send(
        dst=net.roles["host2"], payload_len=256, gm={"last": True},
        on_delivered=lambda tp: done.succeed(tp), route=paths.itb5,
    )
    tp = net.sim.run_until_event(done)
    return net, tp


class TestConversion:
    def test_every_record_becomes_an_instant(self):
        net, _tp = traced_run()
        events = to_chrome_trace(net.trace, durations=False)
        assert len(events) == len(net.trace)
        assert all(e["ph"] == "i" for e in events)

    def test_timestamps_in_microseconds(self):
        trace = Trace()
        trace.emit(2_000.0, "nic[x]", "inject", pid=1, seg=0)
        events = to_chrome_trace(trace, durations=False)
        assert events[0]["ts"] == pytest.approx(2.0)

    def test_components_become_rows(self):
        net, _tp = traced_run()
        events = to_chrome_trace(net.trace)
        tids = {e["tid"] for e in events}
        assert "nic[host1]" in tids
        assert "nic[itb]" in tids
        assert "nic[host2]" in tids

    def test_packet_duration_pair_balanced(self):
        net, tp = traced_run()
        events = to_chrome_trace(net.trace, durations=True)
        begins = [e for e in events if e.get("ph") == "b"
                  and e.get("id") == tp.pid]
        ends = [e for e in events if e.get("ph") == "e"
                and e.get("id") == tp.pid]
        assert len(begins) == 1 and len(ends) == 1
        assert begins[0]["ts"] <= ends[0]["ts"]

    def test_dropped_packet_closes_span(self):
        """A packet dropped by the original firmware (unknown ITB
        type) still gets a balanced span."""
        cfg = NetworkConfig(
            firmware="original", routing="updown", trace=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        paths = fig6_paths(net.topo, net.roles)
        done = net.sim.event("one")
        net.nics[net.roles["host1"]].firmware.host_send(
            dst=net.roles["host2"], payload_len=64, gm={"last": True},
            on_delivered=lambda tp: done.succeed(tp), route=paths.itb5,
        )
        tp = net.sim.run_until_event(done)
        assert tp.dropped
        events = to_chrome_trace(net.trace, durations=True)
        phases = [e["ph"] for e in events if e.get("id") == tp.pid]
        assert phases.count("b") == phases.count("e") == 1


class TestFileOutput:
    def test_written_file_is_loadable_json(self, tmp_path):
        net, _tp = traced_run()
        path = write_chrome_trace(net.trace, tmp_path / "trace.json")
        blob = json.loads(path.read_text())
        assert "traceEvents" in blob
        assert blob["displayTimeUnit"] == "ns"
        assert len(blob["traceEvents"]) > 0

    def test_empty_trace_ok(self, tmp_path):
        path = write_chrome_trace(Trace(), tmp_path / "empty.json")
        blob = json.loads(path.read_text())
        assert blob["traceEvents"] == []
