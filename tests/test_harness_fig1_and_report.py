"""Tests for the Figure 1 analysis harness and the reporting helpers."""

from __future__ import annotations

import math

import pytest

from repro.harness.fig1 import run_fig1
from repro.harness.metrics import saturation_point, summarize_latencies
from repro.harness.report import format_table, paper_vs_measured


@pytest.fixture(scope="module")
def fig1():
    return run_fig1()


class TestFig1Analysis:
    def test_showcase_lengths(self, fig1):
        """The Figure 1 situation: minimal (3) < up*/down* (4); the
        ITB route re-crosses the split switch so its traversal count
        matches up*/down* but it uses fewer inter-switch cables."""
        assert fig1.showcase_minimal_len == 3
        assert fig1.showcase_updown_len == 4
        assert fig1.showcase_itb_inter_switch_hops < \
            fig1.showcase_updown_inter_switch_hops
        assert len(fig1.showcase_itb_hosts) == 1

    def test_deadlock_verdicts(self, fig1):
        assert fig1.updown_deadlock_free
        assert fig1.itb_deadlock_free
        assert not fig1.minimal_deadlock_free

    def test_itb_relieves_the_root(self, fig1):
        """Fewer routes cross the spanning-tree root under ITB routing
        — the traffic-balance argument of the paper's introduction."""
        assert fig1.root_cross_itb < fig1.root_cross_updown

    def test_itb_never_longer_on_fabric_links(self, fig1):
        assert fig1.avg_itb <= fig1.avg_updown + 1e-9
        assert fig1.pairs_itb_shorter > 0


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["size", "latency"],
            [(1, 10.5), (4096, 999.25)],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "size" in lines[1] and "latency" in lines[1]
        assert len(lines) == 5
        # All rows equal width.
        assert len({len(l) for l in lines[1:]}) == 1

    def test_paper_vs_measured(self):
        out = paper_vs_measured(
            [("overhead", "125 ns", "121 ns", True),
             ("ratio", "2x", "1.3x", False)],
        )
        assert "yes" in out and "NO" in out


class TestMetrics:
    def test_summarize_latencies(self):
        s = summarize_latencies([1000.0, 2000.0, 3000.0])
        assert s.n == 3
        assert s.mean == 2000.0
        assert s.minimum == 1000.0 and s.maximum == 3000.0
        assert s.mean_us == 2.0
        assert not s.empty

    def test_summarize_tail_percentiles(self):
        samples = list(range(1, 1001))  # 1..1000
        s = summarize_latencies(samples)
        assert s.p50 <= s.p90 <= s.p99 <= s.p999 <= s.maximum
        assert s.p90 == pytest.approx(900, abs=2)
        assert s.p999 == pytest.approx(999, abs=2)

    def test_summarize_empty_is_nan_not_zero(self):
        s = summarize_latencies([])
        assert s.n == 0 and s.empty
        # nan sentinel: an empty run must not look like a 0-ns run.
        for value in (s.mean, s.std, s.minimum, s.p50, s.p90,
                      s.p99, s.p999, s.maximum):
            assert math.isnan(value)

    def test_saturation_point(self):
        offered = [0.01, 0.02, 0.04, 0.08]
        accepted = [0.01, 0.02, 0.03, 0.03]
        assert saturation_point(offered, accepted) == 0.02

    def test_saturation_point_validates(self):
        with pytest.raises(ValueError):
            saturation_point([1.0], [1.0, 2.0])
