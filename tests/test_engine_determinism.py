"""Determinism guarantees of the fast-path engine.

The immediate lane and direct-from-calendar timeout resume must not
change *anything* observable: persisted experiment documents are
byte-identical to golden copies captured from the pre-fast-path
engine (``tests/golden/``), serial and fan-out runs agree, and mixed
immediate-lane / calendar-heap workloads dispatch in exact global
``(time, priority, seq)`` order.
"""

from __future__ import annotations

import heapq
import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden"


def _run_cli(tmp_path, name, *argv):
    out = tmp_path / name
    cmd = [sys.executable, "-m", "repro.cli", *argv, "--save", str(out)]
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    subprocess.run(cmd, check=True, env=env, cwd=tmp_path,
                   stdout=subprocess.DEVNULL)
    return out.read_bytes()


class TestGoldenDocuments:
    """Same seeds, new engine -> byte-identical persisted documents."""

    def test_fig7_byte_identical(self, tmp_path):
        got = _run_cli(tmp_path, "fig7.json", "fig7", "--iterations", "5")
        assert got == (GOLDEN / "fig7.json").read_bytes()

    def test_fig8_byte_identical(self, tmp_path):
        got = _run_cli(tmp_path, "fig8.json", "fig8", "--iterations", "5")
        assert got == (GOLDEN / "fig8.json").read_bytes()

    @pytest.mark.parametrize("jobs", ["1", "4"])
    def test_throughput_byte_identical(self, tmp_path, jobs):
        got = _run_cli(
            tmp_path, f"throughput_j{jobs}.json", "throughput",
            "--switches", "8", "--rates", "0.02", "0.06",
            "--duration", "80", "--jobs", jobs,
        )
        assert got == (GOLDEN / "throughput.json").read_bytes()


def _oracle_order(ops):
    """Reference dispatch order: a single (time, priority, seq) heap
    with no immediate lane — the semantics the two-lane engine must
    reproduce exactly."""
    q, fired, seq = [], [], 0
    for i, (delay, prio, _kids) in enumerate(ops):
        seq += 1
        heapq.heappush(q, (delay, prio, seq, ("top", i)))
    while q:
        now, _prio, _seq, (kind, i) = heapq.heappop(q)
        fired.append((kind, i))
        if kind == "top":
            for j, (kdelay, kprio) in enumerate(ops[i][2]):
                seq += 1
                heapq.heappush(q, (now + kdelay, kprio, seq,
                                   ("kid", (i, j))))
    return fired


_OP = st.tuples(
    st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.0]),   # bias toward ties
    st.sampled_from([-1, 0, 0, 1]),
    st.lists(
        st.tuples(st.sampled_from([0.0, 0.0, 1.0]),
                  st.sampled_from([-1, 0, 0, 1])),
        max_size=3,
    ),
)


class TestLaneInterleaving:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_OP, max_size=24))
    def test_matches_single_heap_oracle(self, ops):
        """Immediate-lane and heap events at equal times interleave in
        FIFO ``seq`` order, exactly as one global calendar would."""
        sim = Simulator()
        fired = []

        def fire_kid(i, j):
            fired.append(("kid", (i, j)))

        def fire_top(i):
            fired.append(("top", i))
            for j, (kdelay, kprio) in enumerate(ops[i][2]):
                sim.schedule(kdelay, lambda i=i, j=j: fire_kid(i, j),
                             priority=kprio)

        for i, (delay, prio, _kids) in enumerate(ops):
            sim.schedule(delay, lambda i=i: fire_top(i), priority=prio)
        sim.run()
        assert fired == _oracle_order(ops)

    def test_zero_delay_chain_is_fifo(self):
        """A succeed->resume style chain keeps strict submission order
        against same-time heap entries on both sides."""
        sim = Simulator()
        order = []
        sim.schedule(0.0, lambda: order.append("imm1"))
        sim.schedule(0.0, lambda: order.append("heap-pri1"), priority=1)
        sim.schedule(0.0, lambda: order.append("imm2"))
        sim.schedule(0.0, lambda: order.append("heap-pri-neg"), priority=-1)
        sim.run()
        assert order == ["heap-pri-neg", "imm1", "imm2", "heap-pri1"]


class TestGoldenFilesAreCanonical:
    def test_golden_docs_parse_and_carry_format_version(self):
        for name in ("fig7.json", "fig8.json", "throughput.json"):
            doc = json.loads((GOLDEN / name).read_text())
            assert doc["format_version"] == 2, name
