"""Tests for the GM host layer: API, segmentation, reliability."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.host import GM_MTU, GmSendError


def build(reliable=True, **kw):
    cfg = NetworkConfig(
        firmware="itb",
        routing="itb",
        reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        **kw,
    )
    return build_network("fig6", config=cfg)


class TestSendReceive:
    def test_roundtrip(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            msg = yield b.receive()
            got.append(msg)

        net.sim.process(receiver(), name="rx")
        a.send(b.host, 512, tag=9)
        net.sim.run(until=2_000_000)
        assert len(got) == 1
        msg = got[0]
        assert msg.length == 512 and msg.tag == 9
        assert msg.src == a.host and msg.dst == b.host
        assert msg.latency_ns > 0

    def test_zero_length_message(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            msg = yield b.receive()
            got.append(msg)

        net.sim.process(receiver(), name="rx")
        a.send(b.host, 0)
        net.sim.run(until=2_000_000)
        assert got and got[0].length == 0

    def test_negative_length_rejected(self):
        net = build()
        with pytest.raises(ValueError):
            net.gm("host1").send(net.roles["host2"], -1)

    def test_messages_arrive_in_order(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            for _ in range(5):
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(receiver(), name="rx")
        for i in range(5):
            a.send(b.host, 64, tag=i)
        net.sim.run(until=5_000_000)
        assert got == list(range(5))

    def test_send_completion_event(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        completions = []

        def sender():
            done = a.send(b.host, 128)
            yield done
            completions.append(net.sim.now)

        def receiver():
            yield b.receive()

        net.sim.process(receiver(), name="rx")
        net.sim.process(sender(), name="tx")
        net.sim.run(until=5_000_000)
        assert len(completions) == 1  # acked

    def test_unreliable_completion_is_local(self):
        net = build(reliable=False)
        a, b = net.gm("host1"), net.gm("host2")
        done = a.send(b.host, 128)
        net.sim.run(until=2_000_000)
        assert done.triggered
        assert a.retransmissions == 0


class TestSegmentation:
    def test_multi_mtu_message(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        size = int(2.5 * GM_MTU)
        got = []

        def receiver():
            msg = yield b.receive()
            got.append(msg)

        net.sim.process(receiver(), name="rx")
        a.send(b.host, size)
        net.sim.run(until=10_000_000)
        assert got and got[0].length == size
        # Three packets crossed the wire (plus acks).
        assert net.nic("host1").stats.packets_sent >= 3

    def test_exact_mtu_single_packet(self):
        net = build(reliable=False)
        a, b = net.gm("host1"), net.gm("host2")
        a.send(b.host, GM_MTU)
        net.sim.run(until=5_000_000)
        assert net.nic("host1").stats.packets_sent == 1


class TestReliability:
    def test_flush_recovered_by_retransmission(self):
        """A packet flushed by a full in-transit buffer pool is
        retransmitted and eventually delivered — the exact recovery
        story of paper Section 4."""
        from repro.harness.paths import fig6_paths

        cfg = NetworkConfig(
            firmware="itb", routing="updown", reliable=True,
            recv_buffer_kind="pool",
            pool_bytes=600,  # tiny: a 512 B in-transit packet + headers fits once
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        paths = fig6_paths(net.topo, net.roles)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            while True:
                msg = yield b.receive()
                got.append(msg)

        net.sim.process(receiver(), name="rx")
        # Two quick ITB-path sends: the second finds the pool full
        # while the first still occupies it.
        a.send(b.host, 512, tag=0, route=paths.itb5)
        a.send(b.host, 512, tag=1, route=paths.itb5)
        net.sim.run(until=20_000_000)
        assert sorted(m.tag for m in got) == [0, 1]
        assert net.nic("itb").stats.packets_flushed >= 1
        assert a.retransmissions >= 1

    def test_retry_budget_exhaustion_fails_gracefully(self):
        """A destination that always flushes exhausts retries: the send
        completion event *fails* with GmSendError but the simulation
        keeps running (no wedge, no crash)."""
        cfg = NetworkConfig(
            firmware="itb", routing="updown", reliable=True,
            recv_buffer_kind="pool", pool_bytes=600,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        a = net.gm("host1")
        a.max_retries = 3
        a.resend_timeout_ns = 50_000.0
        # Occupy the destination pool forever so every arrival flushes.
        net.nic("host2").recv_buffers.try_accept("squatter", 550)
        done = a.send(net.roles["host2"], 512)
        outcome = []

        def waiter():
            try:
                yield done
                outcome.append("ok")
            except GmSendError as exc:
                outcome.append(exc)

        net.sim.process(waiter())
        net.sim.run(until=50_000_000)
        assert len(outcome) == 1
        assert isinstance(outcome[0], GmSendError)
        assert a.send_errors == 1
        assert a.messages_failed == 1
        assert a.timeouts >= 3
        # State is purged: nothing left unacked, nothing in flight.
        conn = a._connections[net.roles["host2"]]
        assert not conn.unacked
        assert not a._in_flight

    def test_duplicate_suppression(self):
        """A spurious retransmission (duplicate seq) is not delivered
        twice to the application."""
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        a.resend_timeout_ns = 1_000.0  # absurdly eager: forces duplicates
        got = []

        def receiver():
            while True:
                msg = yield b.receive()
                got.append(msg)

        net.sim.process(receiver(), name="rx")
        a.send(b.host, 256, tag=5)
        net.sim.run(until=5_000_000)
        assert len(got) == 1


class TestBidirectional:
    def test_simultaneous_cross_traffic(self):
        net = build()
        a, b = net.gm("host1"), net.gm("host2")
        got_a, got_b = [], []

        def rx(host, sink):
            while True:
                msg = yield host.receive()
                sink.append(msg)

        net.sim.process(rx(a, got_a), name="rxa")
        net.sim.process(rx(b, got_b), name="rxb")
        for i in range(3):
            a.send(b.host, 100 + i)
            b.send(a.host, 200 + i)
        net.sim.run(until=10_000_000)
        assert [m.length for m in got_b] == [100, 101, 102]
        assert [m.length for m in got_a] == [200, 201, 202]
