"""Tests for the fabric (directed channels)."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.network.fabric import Fabric
from repro.sim.engine import Simulator
from repro.topology.generators import fig6_testbed
from repro.topology.graph import PortKind, Topology, TopologyError


@pytest.fixture
def fig6_fabric():
    topo, roles = fig6_testbed()
    sim = Simulator()
    return Fabric(sim, topo, Timings()), topo, roles


class TestChannels:
    def test_two_channels_per_cable(self, fig6_fabric):
        fabric, topo, _ = fig6_fabric
        assert len(fabric.channels()) == 2 * len(topo.links)

    def test_out_channel_resolution(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        ch = fabric.out_channel(roles["sw1"], 0)
        assert ch.from_node == roles["sw1"]
        assert ch.to_node == roles["sw2"]
        back = fabric.out_channel(roles["sw2"], 0)
        assert back.from_node == roles["sw2"]
        assert back.to_node == roles["sw1"]
        assert ch.key != back.key

    def test_uncabled_port_rejected(self, fig6_fabric):
        fabric, _, roles = fig6_fabric
        with pytest.raises(TopologyError):
            fabric.out_channel(roles["sw1"], 7)

    def test_loopback_channels_distinct(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        sw2 = roles["sw2"]
        a = fabric.out_channel(sw2, 6)
        b = fabric.out_channel(sw2, 7)
        assert a.key != b.key
        assert a.from_node == a.to_node == sw2
        assert a.to_port == 7 and b.to_port == 6

    def test_host_channels(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        out = fabric.host_out(roles["host1"])
        inn = fabric.host_in(roles["host1"])
        assert out.from_node == roles["host1"]
        assert out.to_node == roles["sw1"]
        assert inn.from_node == roles["sw1"]
        assert inn.to_node == roles["host1"]

    def test_channel_between(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        ch = fabric.channel_between(roles["sw1"], roles["sw2"])
        assert ch.from_node == roles["sw1"]
        with pytest.raises(TopologyError):
            fabric.channel_between(roles["host1"], roles["host2"])


class TestTiming:
    def test_fall_through_by_kinds(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        t = fabric.timings
        san = fabric.out_channel(roles["sw1"], 0)   # SAN inter-switch
        lan = fabric.out_channel(roles["sw1"], 4)   # LAN inter-switch
        assert fabric.fall_through(san, san) == t.fall_through_ns[
            (PortKind.SAN, PortKind.SAN)]
        assert fabric.fall_through(san, lan) == t.fall_through_ns[
            (PortKind.SAN, PortKind.LAN)]
        assert fabric.fall_through(lan, lan) == t.fall_through_ns[
            (PortKind.LAN, PortKind.LAN)]

    def test_propagation_scales_with_length(self):
        topo = Topology()
        s1, s2 = topo.add_switch(), topo.add_switch()
        topo.connect(s1, 0, s2, 0, length_m=10.0)
        fabric = Fabric(Simulator(), topo, Timings())
        ch = fabric.out_channel(s1, 0)
        assert ch.prop_ns == pytest.approx(Timings().prop_ns_per_m * 10.0)

    def test_utilization_snapshot(self, fig6_fabric):
        fabric, _, roles = fig6_fabric
        snap = fabric.utilization_snapshot()
        assert all(v == 0 for v in snap.values())
        ch = fabric.out_channel(roles["sw1"], 0)
        ch.resource.try_acquire("x")
        assert fabric.utilization_snapshot()[ch.key] == 1


def _laned_fabric(lanes: int):
    topo, roles = fig6_testbed()
    return Fabric(Simulator(), topo, Timings(), lanes=lanes), topo, roles


class TestLanedChannels:
    def test_lane_resources_per_channel(self):
        fabric, topo, _ = _laned_fabric(3)
        for ch in fabric.channels():
            assert ch.n_lanes == 3
            assert len({id(res) for res in ch.lanes}) == 3

    def test_lane_zero_name_is_the_single_lane_name(self):
        """Event names derive from resource names — lane 0 must keep
        the exact pre-lane bytes, extra lanes get a suffix."""
        single, _, roles = _laned_fabric(1)
        multi, _, _ = _laned_fabric(3)
        for key, ch in single._channels.items():
            laned = multi._channels[key]
            assert laned.lanes[0].name == ch.resource.name
            assert laned.lanes[1].name == ch.resource.name + ":l1"
            assert laned.lanes[2].name == ch.resource.name + ":l2"

    def test_resource_property_aliases_lane_zero(self):
        fabric, _, roles = _laned_fabric(2)
        ch = fabric.out_channel(roles["sw1"], 0)
        assert ch.resource is ch.lanes[0]
        sentinel = object()
        ch.resource = sentinel  # instrumentation swaps a proxy in
        assert ch.lanes[0] is sentinel

    def test_utilization_snapshot_sums_lanes(self):
        fabric, _, roles = _laned_fabric(3)
        ch = fabric.out_channel(roles["sw1"], 0)
        ch.lanes[0].try_acquire("a")
        ch.lanes[2].try_acquire("b")
        snap = fabric.utilization_snapshot()
        assert set(map(len, snap)) == {2}   # keys stay 2-tuples
        assert snap[ch.key] == 2

    def test_lane_utilization_snapshot_is_per_lane(self):
        fabric, _, roles = _laned_fabric(3)
        ch = fabric.out_channel(roles["sw1"], 0)
        ch.lanes[1].try_acquire("a")
        snap = fabric.lane_utilization_snapshot()
        assert snap[ch.lane_key(0)] == 0
        assert snap[ch.lane_key(1)] == 1
        assert snap[ch.lane_key(2)] == 0
        assert len(snap) == 3 * 2 * len(fabric.topo.links)


class TestLinkDownAcrossLanes:
    """set_link_down / set_link_up with in-flight worms riding
    different lanes of the same cable."""

    @staticmethod
    def _busy_multilane_net():
        """A 2-lane round-robin net driven until some inter-switch
        cable has live claims on both lanes.

        Two hosts share the source switch, so their concurrent flights
        toward the far switch contend for the same directed channel
        and round-robin spreads them across its lanes.
        """
        from repro.core.builder import build_network
        from repro.core.config import NetworkConfig

        topo = Topology(name="two-senders")
        s1, s2 = topo.add_switch(), topo.add_switch()
        topo.connect(s1, 0, s2, 0, kind=PortKind.SAN)
        h1 = topo.attach_host(s1, 2, kind=PortKind.SAN, name="h1")
        h2 = topo.attach_host(s1, 3, kind=PortKind.SAN, name="h2")
        h3 = topo.attach_host(s2, 2, kind=PortKind.SAN, name="h3")
        topo.validate()
        config = NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
            lanes=2, lane_policy="roundrobin",
        )
        net = build_network(topo, config=config,
                            roles={"h1": h1, "h2": h2, "h3": h3})
        a, b = net.gm("h1"), net.gm("h2")
        for tag in range(8):
            a.send(h3, 4096, tag=tag)
            b.send(h3, 4096, tag=100 + tag)
        inter = [l.link_id for l in net.topo.links
                 if net.topo.is_switch(l.node_a)
                 and net.topo.is_switch(l.node_b)]
        t = 0.0
        while True:
            t += 200.0
            net.sim.run(until=t)
            assert t < 2_000_000, "no cable ever saw both lanes claimed"
            for link_id in inter:
                for d in (0, 1):
                    if (net.fabric._claimed_by.get((link_id, d, 0))
                            and net.fabric._claimed_by.get((link_id, d, 1))):
                        return net, link_id, d

    def test_down_returns_claimants_of_every_lane(self):
        net, link_id, d = self._busy_multilane_net()
        lane0 = list(net.fabric._claimed_by[(link_id, d, 0)])
        lane1 = list(net.fabric._claimed_by[(link_id, d, 1)])
        victims = net.fabric.set_link_down(link_id)
        for worm in lane0 + lane1:
            assert worm in victims
        assert net.fabric.link_is_down(link_id)

    def test_up_clears_both_directions(self):
        net, link_id, _d = self._busy_multilane_net()
        net.fabric.set_link_down(link_id)
        net.fabric.set_link_up(link_id)
        assert not net.fabric.link_is_down(link_id)
        assert (link_id, 0) not in net.fabric.down_keys
        assert (link_id, 1) not in net.fabric.down_keys

    def test_killed_worms_release_their_lanes(self):
        from repro.network.faults import FaultEvent, FaultInjector, FaultPlan

        net, link_id, _d = self._busy_multilane_net()
        injector = FaultInjector(net, FaultPlan())
        injector._apply(FaultEvent(kind="link-down", target=link_id,
                                   at_ns=net.sim.now, repair_ns=1_000.0))
        assert injector.plan.killed_in_flight >= 2
        for direction in (0, 1):
            ch = net.fabric.channel(link_id, direction)
            for res in ch.lanes:
                assert not res.in_use
