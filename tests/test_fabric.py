"""Tests for the fabric (directed channels)."""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.network.fabric import Fabric
from repro.sim.engine import Simulator
from repro.topology.generators import fig6_testbed
from repro.topology.graph import PortKind, Topology, TopologyError


@pytest.fixture
def fig6_fabric():
    topo, roles = fig6_testbed()
    sim = Simulator()
    return Fabric(sim, topo, Timings()), topo, roles


class TestChannels:
    def test_two_channels_per_cable(self, fig6_fabric):
        fabric, topo, _ = fig6_fabric
        assert len(fabric.channels()) == 2 * len(topo.links)

    def test_out_channel_resolution(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        ch = fabric.out_channel(roles["sw1"], 0)
        assert ch.from_node == roles["sw1"]
        assert ch.to_node == roles["sw2"]
        back = fabric.out_channel(roles["sw2"], 0)
        assert back.from_node == roles["sw2"]
        assert back.to_node == roles["sw1"]
        assert ch.key != back.key

    def test_uncabled_port_rejected(self, fig6_fabric):
        fabric, _, roles = fig6_fabric
        with pytest.raises(TopologyError):
            fabric.out_channel(roles["sw1"], 7)

    def test_loopback_channels_distinct(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        sw2 = roles["sw2"]
        a = fabric.out_channel(sw2, 6)
        b = fabric.out_channel(sw2, 7)
        assert a.key != b.key
        assert a.from_node == a.to_node == sw2
        assert a.to_port == 7 and b.to_port == 6

    def test_host_channels(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        out = fabric.host_out(roles["host1"])
        inn = fabric.host_in(roles["host1"])
        assert out.from_node == roles["host1"]
        assert out.to_node == roles["sw1"]
        assert inn.from_node == roles["sw1"]
        assert inn.to_node == roles["host1"]

    def test_channel_between(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        ch = fabric.channel_between(roles["sw1"], roles["sw2"])
        assert ch.from_node == roles["sw1"]
        with pytest.raises(TopologyError):
            fabric.channel_between(roles["host1"], roles["host2"])


class TestTiming:
    def test_fall_through_by_kinds(self, fig6_fabric):
        fabric, topo, roles = fig6_fabric
        t = fabric.timings
        san = fabric.out_channel(roles["sw1"], 0)   # SAN inter-switch
        lan = fabric.out_channel(roles["sw1"], 4)   # LAN inter-switch
        assert fabric.fall_through(san, san) == t.fall_through_ns[
            (PortKind.SAN, PortKind.SAN)]
        assert fabric.fall_through(san, lan) == t.fall_through_ns[
            (PortKind.SAN, PortKind.LAN)]
        assert fabric.fall_through(lan, lan) == t.fall_through_ns[
            (PortKind.LAN, PortKind.LAN)]

    def test_propagation_scales_with_length(self):
        topo = Topology()
        s1, s2 = topo.add_switch(), topo.add_switch()
        topo.connect(s1, 0, s2, 0, length_m=10.0)
        fabric = Fabric(Simulator(), topo, Timings())
        ch = fabric.out_channel(s1, 0)
        assert ch.prop_ns == pytest.approx(Timings().prop_ns_per_m * 10.0)

    def test_utilization_snapshot(self, fig6_fabric):
        fabric, _, roles = fig6_fabric
        snap = fabric.utilization_snapshot()
        assert all(v == 0 for v in snap.values())
        ch = fabric.out_channel(roles["sw1"], 0)
        ch.resource.try_acquire("x")
        assert fabric.utilization_snapshot()[ch.key] == 1
