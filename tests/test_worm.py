"""Tests for wormhole packet progression.

Timing assertions here validate the cut-through pipeline model against
hand-computed values, so every higher-level latency number in the
harness is grounded.
"""

from __future__ import annotations

import pytest

from repro.core.timings import Timings
from repro.mcp.packet_format import encode_packet
from repro.network.fabric import Fabric
from repro.network.worm import Worm
from repro.routing.routes import SourceRoute
from repro.sim.engine import SimulationError, Simulator
from repro.topology.graph import PortKind, Topology


class Recorder:
    """Minimal WormObserver recording the notification times."""

    def __init__(self, gate=None):
        self.header_at = None
        self.complete_at = None
        self.gate = gate

    def on_header(self, worm, t):
        self.header_at = t
        return self.gate

    def on_complete(self, worm, t):
        self.complete_at = t


def single_switch_net():
    """host_a -- switch -- host_b, all SAN, 3 m cables."""
    topo = Topology()
    sw = topo.add_switch(n_ports=4)
    ha = topo.attach_host(sw, 0, name="a")
    hb = topo.attach_host(sw, 1, name="b")
    sim = Simulator()
    timings = Timings()
    fabric = Fabric(sim, topo, timings)
    return sim, fabric, topo, sw, ha, hb


def launch(sim, fabric, segment, payload, observer):
    image = encode_packet(segment, payload)
    worm = Worm(sim, fabric, segment, image, observer=observer)
    worm.launch()
    return worm, image


class TestSingleHopTiming:
    def test_hand_computed_latency(self):
        sim, fabric, topo, sw, ha, hb = single_switch_net()
        t = fabric.timings
        seg = SourceRoute(src=ha, dst=hb, ports=(1,), switch_path=(sw,))
        rec = Recorder()
        worm, image = launch(sim, fabric, seg, b"x" * 37, rec)
        sim.run()

        prop = t.propagation(3.0)
        fall = t.fall_through(PortKind.SAN, PortKind.SAN)
        # Head: one byte onto the wire, propagate, route (fall-through),
        # propagate to the destination NIC.
        head = t.link_byte_ns + prop + fall + prop
        # The switch strips the single route byte; wire length at the
        # destination is the encoded length minus one.
        wire_at_dst = len(image.data) - 1
        early = t.wire_time(t.early_recv_bytes)
        assert rec.header_at == pytest.approx(head + early)
        assert rec.complete_at == pytest.approx(
            head + t.wire_time(wire_at_dst))
        assert worm.blocked_ns == 0.0

    def test_channels_released_after_completion(self):
        sim, fabric, topo, sw, ha, hb = single_switch_net()
        seg = SourceRoute(src=ha, dst=hb, ports=(1,), switch_path=(sw,))
        rec = Recorder()
        launch(sim, fabric, seg, b"abc", rec)
        sim.run()
        assert all(v == 0 for v in fabric.utilization_snapshot().values())

    def test_tiny_packet_header_clamped(self):
        """A packet shorter than early_recv_bytes still notifies."""
        sim, fabric, topo, sw, ha, hb = single_switch_net()
        seg = SourceRoute(src=ha, dst=hb, ports=(1,), switch_path=(sw,))
        rec = Recorder()
        launch(sim, fabric, seg, b"", rec)
        sim.run()
        assert rec.header_at is not None
        assert rec.complete_at >= rec.header_at


class TestBlocking:
    def two_senders_one_output(self):
        """Two hosts on one switch, both targeting a third host."""
        topo = Topology()
        sw = topo.add_switch(n_ports=4)
        a = topo.attach_host(sw, 0, name="a")
        b = topo.attach_host(sw, 1, name="b")
        c = topo.attach_host(sw, 2, name="c")
        sim = Simulator()
        fabric = Fabric(sim, topo, Timings())
        return sim, fabric, sw, a, b, c

    def test_second_worm_blocks_on_output_channel(self):
        sim, fabric, sw, a, b, c = self.two_senders_one_output()
        seg_a = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        seg_b = SourceRoute(src=b, dst=c, ports=(2,), switch_path=(sw,))
        rec_a, rec_b = Recorder(), Recorder()
        payload = b"z" * 1000
        worm_a, _ = launch(sim, fabric, seg_a, payload, rec_a)
        worm_b, _ = launch(sim, fabric, seg_b, payload, rec_b)
        sim.run()
        # Both delivered, strictly one after the other on the shared
        # output channel; the second accrued blocking time.
        assert rec_a.complete_at is not None and rec_b.complete_at is not None
        first, second = sorted([worm_a, worm_b],
                               key=lambda w: w.complete_time)
        assert second.header_time >= first.complete_time
        assert second.blocked_ns > 0
        assert first.blocked_ns == 0

    def test_gate_stalls_completion(self):
        """A gate event from on_header delays the body (buffer
        backpressure) but not the header notification."""
        sim, fabric, sw, a, b, c = self.two_senders_one_output()
        gate = sim.event("buffer-free")
        rec = Recorder(gate=gate)
        seg = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        launch(sim, fabric, seg, b"ab", rec)
        sim.schedule(50_000, lambda: gate.succeed())
        sim.run()
        assert rec.header_at < 1_000
        assert rec.complete_at >= 50_000


class TestSelfDeadlock:
    def test_route_reentering_held_channel_raises(self):
        """A route that reuses a directed channel fails loudly."""
        topo = Topology()
        s1 = topo.add_switch(n_ports=4)
        s2 = topo.add_switch(n_ports=4)
        topo.connect(s1, 0, s2, 0)
        topo.connect(s1, 1, s2, 1)
        a = topo.attach_host(s1, 2, name="a")
        b = topo.attach_host(s2, 2, name="b")
        sim = Simulator()
        fabric = Fabric(sim, topo, Timings())
        # s1 ->(0) s2 ->(1) s1 ->(0) s2: reuses the port-0 channel.
        seg = SourceRoute(src=a, dst=b, ports=(0, 1, 0, 2),
                          switch_path=(s1, s2, s1, s2))
        rec = Recorder()
        launch(sim, fabric, seg, b"x", rec)
        with pytest.raises(SimulationError, match="re-enters"):
            sim.run()


class TestForwardDelayClamp:
    """Regression tests for the float-rounding guard on head-arrival
    schedules (``head_at_input - sim.now`` can go epsilon-negative on
    long accumulated schedules)."""

    def test_positive_delta_passes_through(self):
        from repro.network.worm import _forward_delay
        assert _forward_delay(100.25, 100.0) == 0.25

    def test_zero_delta_is_zero(self):
        from repro.network.worm import _forward_delay
        assert _forward_delay(100.0, 100.0) == 0.0

    def test_epsilon_negative_clamps_to_zero(self):
        from repro.network.worm import TIME_EPS_NS, _forward_delay
        # A delta one float step below zero, as produced by summing the
        # same hop latencies in a different association order.
        target = 0.1 + 0.2  # 0.30000000000000004
        now = 0.3 + 5e-17 * 0  # plain 0.3
        assert _forward_delay(now, target) == 0.0  # target > now side
        assert _forward_delay(target, now) > 0.0
        tiny = -TIME_EPS_NS / 2
        assert _forward_delay(100.0 + tiny, 100.0) == 0.0

    def test_large_negative_raises(self):
        from repro.network.worm import _forward_delay
        with pytest.raises(AssertionError, match="into the past"):
            _forward_delay(99.0, 100.0)

    def test_timeout_never_sees_negative_delay(self):
        """End to end: a worm whose accumulated schedule rounds
        epsilon-negative must not trip ``Timeout``'s validation."""
        from repro.network.worm import _forward_delay
        from repro.sim.engine import Timeout
        delay = _forward_delay(1000.0 - 1e-9, 1000.0)
        Timeout(delay)  # must not raise ValueError
