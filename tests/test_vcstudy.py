"""Tests for the ITB-vs-virtual-channel head-to-head study (EXP-VC)."""

from __future__ import annotations

from repro.exp import Runner, get_experiment
from repro.harness.persist import load_results, save_results
from repro.harness.vcstudy import (
    VcStudyResult,
    analyze_arm,
    study_arms,
    study_topology,
    vc_lanes_for,
)
from repro.routing.cache import RouteCache


def _quick_spec():
    """The --quick spec: one saturating rate, short window."""
    return get_experiment("vc-study").default_spec().replace(
        rates=(0.12,), duration_ns=60_000.0, warmup_ns=12_000.0)


class TestArms:
    def test_five_mechanisms(self):
        topo = study_topology(8, 5, 2)
        arms = study_arms(topo)
        assert [a.mechanism for a in arms] == [
            "updown", "itb", "minimal", "vc", "itb+vc"]

    def test_minimal_is_static_only(self):
        topo = study_topology(8, 5, 2)
        arms = {a.mechanism: a for a in study_arms(topo)}
        assert not arms["minimal"].dynamic
        assert all(a.dynamic for m, a in arms.items() if m != "minimal")

    def test_vc_arm_sized_by_lanes_required(self):
        """The headline topology needs >2 escape lanes — the study
        grants minimal routing exactly what the dateline walk demands."""
        topo = study_topology(8, 5, 2)
        need = vc_lanes_for(topo)
        assert need >= 2
        arms = {a.mechanism: a for a in study_arms(topo)}
        assert arms["vc"].lanes == need
        assert arms["vc"].lane_policy == "escape"
        assert arms["itb+vc"].lanes == 2
        assert arms["itb+vc"].lane_policy == "roundrobin"

    def test_static_verdicts(self):
        """Minimal routing deadlocks unlaned on the headline topology;
        every dynamic arm is provably deadlock-free."""
        topo = study_topology(8, 5, 2)
        for arm in study_arms(topo):
            free, _need = analyze_arm(topo, arm)
            assert free == (arm.mechanism != "minimal")


class TestQuickRun:
    """One end-to-end --quick run through the Runner, assertions on
    the row the README headline table is built from."""

    def test_quick_study_end_to_end(self, tmp_path):
        path = tmp_path / "vc.json"
        report = Runner(cache=RouteCache()).run(
            _quick_spec(), save=str(path))
        result = report.result
        assert isinstance(result, VcStudyResult)
        rows = {r.mechanism: r for r in result.rows}
        assert set(rows) == {"updown", "itb", "minimal", "vc", "itb+vc"}

        # The deadlocked arm carries a verdict but no traffic points.
        assert rows["minimal"].deadlock_free is False
        assert rows["minimal"].points == []
        for mech in ("updown", "itb", "vc", "itb+vc"):
            assert rows[mech].deadlock_free is True
            assert rows[mech].points

        # The acceptance configuration: ITB+VC beats either alone.
        assert result.combined_wins_throughput
        assert rows["itb+vc"].peak_accepted > rows["updown"].peak_accepted

        # Persist round-trip rehydrates the dataclass tree losslessly.
        loaded = load_results(path)
        assert loaded["vc-study"] == result

    def test_result_round_trips_standalone(self, tmp_path):
        """save_results/load_results on a hand-built result, without
        running traffic — pins the persist registry entry."""
        from repro.harness.vcstudy import VcLoadPoint, VcMechanismResult

        row = VcMechanismResult(
            mechanism="vc", routing="minimal", lanes=3,
            lane_policy="escape", deadlock_free=True, lanes_required=3,
            points=[VcLoadPoint(offered=0.1, accepted=0.05,
                                mean_latency_ns=9000.0,
                                p99_latency_ns=20000.0,
                                delivered_fraction=0.5)],
        )
        result = VcStudyResult(n_switches=8, hosts_per_switch=2,
                               packet_size=512, topo_seed=5, rows=[row])
        path = tmp_path / "standalone.json"
        save_results(path, {"vc-study": result})
        assert load_results(path)["vc-study"] == result
