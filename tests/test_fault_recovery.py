"""Dynamic fault recovery: dead cables, switch resets, ITB re-splits.

The tentpole claims of the fault subsystem, each pinned here:

* a link dying under an in-flight worm releases its channels — the
  fabric never wedges and the message is retransmitted to delivery,
* a switch reset triggers the mapper's re-discovery (route remap on
  the degraded topology; a real re-discovery pass sees the degraded
  view),
* an ITB route whose in-transit host dies is re-split through an
  alternate host on the violation switch, and repair restores the
  original split,
* an unrecoverable fault degrades into ``GmSendError``, never a hang,
* runs are deterministic: the same seed reproduces identical counters.
"""

from __future__ import annotations

import dataclasses

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.discovery import discover_network
from repro.gm.host import GmSendError
from repro.network.faults import FaultEvent, FaultInjector, FaultPlan, \
    install_fault_plan
from repro.sim.engine import Timeout
from repro.topology.graph import PortKind, Topology


def build(reliable=True, **kw):
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network("fig6", config=cfg)


def interswitch_links(net):
    """Link ids of the fig6 sw1<->sw2 parallel cables."""
    sw1, sw2 = net.roles["sw1"], net.roles["sw2"]
    return sorted(
        link.link_id for link in net.topo.links
        if {link.node_a, link.node_b} == {sw1, sw2})


def resplit_testbed():
    """A fabric whose only minimal h1->h2 path needs an ITB, with TWO
    candidate in-transit hosts on the violation switch.

    ::

              R          root
             / \\
           M1   M2
           |     |
           S1    S2      h1 @ S1, h2 @ S2
            \\   /
              B          hx, hy @ B  (violation switch)

    With root R, the minimal path S1-B-B-S2 has a down->up turn at B;
    the long way around (S1-M1-R-M2-S2) is valid but two switches
    longer, so the ITB router splits the minimal path at B through the
    first host there (hx).
    """
    topo = Topology(name="itb-resplit")
    r = topo.add_switch(4, name="R")
    m1 = topo.add_switch(4, name="M1")
    m2 = topo.add_switch(4, name="M2")
    s1 = topo.add_switch(4, name="S1")
    s2 = topo.add_switch(4, name="S2")
    b = topo.add_switch(4, name="B")
    topo.connect(r, 0, m1, 0, kind=PortKind.SAN)
    topo.connect(r, 1, m2, 0, kind=PortKind.SAN)
    topo.connect(m1, 1, s1, 0, kind=PortKind.SAN)
    topo.connect(m2, 1, s2, 0, kind=PortKind.SAN)
    topo.connect(s1, 1, b, 0, kind=PortKind.SAN)
    topo.connect(s2, 1, b, 1, kind=PortKind.SAN)
    h1 = topo.attach_host(s1, 2, kind=PortKind.SAN, name="h1")
    h2 = topo.attach_host(s2, 2, kind=PortKind.SAN, name="h2")
    hx = topo.attach_host(b, 2, kind=PortKind.SAN, name="hx")
    hy = topo.attach_host(b, 3, kind=PortKind.SAN, name="hy")
    topo.validate()
    roles = {"h1": h1, "h2": h2, "hx": hx, "hy": hy, "root": r}
    return topo, roles


def build_resplit(reliable=True):
    topo, roles = resplit_testbed()
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=reliable,
        root=roles["root"],
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network(topo, config=cfg, roles=roles)


class TestLinkDownMidWorm:
    def test_in_flight_worm_cut_channels_released_and_recovered(self):
        """Kill the cable a worm is holding: its channels come free,
        the fabric never wedges, and the retransmission delivers."""
        net = build()
        injector = FaultInjector(net, FaultPlan())
        a, b = net.gm("host1"), net.gm("host2")
        delivered = []

        def rx():
            while True:
                msg = yield b.receive()
                delivered.append(msg.tag)

        net.sim.process(rx(), name="rx")
        a.send(b.host, 4096, tag=7)
        # Step until a worm has claimed one of the inter-switch cables
        # (express worms claim without holding the channel Resource).
        inter = interswitch_links(net)
        held = None
        t = 0.0
        while held is None:
            t += 100.0
            net.sim.run(until=t)
            assert t < 1_000_000, "worm never reached the fabric"
            for link_id in inter:
                for d in (0, 1):
                    for lane in range(net.fabric.n_lanes):
                        if net.fabric._claimed_by.get((link_id, d, lane)):
                            held = link_id
        injector._apply(FaultEvent(kind="link-down", target=held,
                                   at_ns=net.sim.now,
                                   repair_ns=300_000.0))
        assert injector.plan.killed_in_flight == 1
        assert net.nic("host1").stats.packets_lost_in_flight == 1
        # The cut worm released every channel immediately.
        assert not net.fabric.channel(held, 0).resource.in_use
        assert not net.fabric.channel(held, 1).resource.in_use
        net.sim.run(until=60_000_000)
        # The remap rerouted onto a parallel cable and the timeout
        # retransmission delivered the message exactly once.
        assert delivered == [7]
        assert a.retransmissions >= 1
        assert injector.plan.remap_events >= 1
        for ch in net.fabric.channels():
            assert not ch.resource.in_use, f"wedged channel {ch.key}"

    def test_new_sends_toward_down_link_die_cleanly(self):
        """A worm launched *after* the fault dies at the down channel
        (no wedge) and the send still converges after repair."""
        net = build()
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="link-down", target=link_id, at_ns=1_000.0,
                       repair_ns=500_000.0)
            for link_id in interswitch_links(net)))
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        def tx():
            yield Timeout(5_000.0)  # launch while every cable is down
            a.send(b.host, 512, tag=1)

        net.sim.process(rx(), name="rx")
        net.sim.process(tx(), name="tx")
        net.sim.run(until=60_000_000)
        assert got == [1]
        assert plan.killed_in_flight >= 1
        for ch in net.fabric.channels():
            assert not ch.resource.in_use


class TestSwitchReset:
    def test_switch_reset_remaps_and_recovers(self):
        net = build()
        plan = FaultPlan(events=(
            FaultEvent(kind="switch-reset", target=net.roles["sw2"],
                       at_ns=100_000.0, repair_ns=300_000.0),
        ))
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        def tx():
            for i in range(6):
                a.send(b.host, 1024, tag=i)
                yield Timeout(60_000.0)

        net.sim.process(rx(), name="rx")
        net.sim.process(tx(), name="tx")
        net.sim.run(until=100_000_000)
        assert sorted(got) == list(range(6))
        assert plan.faults_injected == 1
        assert plan.repairs == 1
        # Re-discovery ran after the fault and after the repair.
        assert plan.remap_events == 2
        for ch in net.fabric.channels():
            assert not ch.resource.in_use

    def test_rediscovery_sees_degraded_view(self):
        """A real discovery pass over the degraded topology reads the
        dead cables as dead ports: the failed region vanishes."""
        net = build()
        full = discover_network(net, net.roles["host1"])
        assert sorted(full.host_attach) == sorted(net.nics)
        assert full.n_switches == 2
        # Now the same pass with every sw1<->sw2 cable dead.
        net2 = build()
        degraded = net2.topo.without_links(set(interswitch_links(net2)))
        part = discover_network(net2, net2.roles["host1"],
                                topo=degraded)
        assert part.n_switches == 1  # sw2 is unreachable
        assert part.hosts == [net2.roles["host1"]]


class TestItbResplit:
    def test_route_splits_at_first_host(self):
        net = build_resplit()
        route = net.nics[net.roles["h1"]].route_table.lookup(
            net.roles["h2"])
        assert len(route.segments) == 2
        assert route.segments[0].dst == net.roles["hx"]

    def test_dead_itb_host_resplits_then_repair_restores(self):
        net = build_resplit()
        h1, h2 = net.roles["h1"], net.roles["h2"]
        hx, hy = net.roles["hx"], net.roles["hy"]
        plan = FaultPlan(events=(
            FaultEvent(kind="host-down", target=hx, at_ns=100_000.0,
                       repair_ns=500_000.0),
        ))
        install_fault_plan(net, plan)
        a, b = net.gm("h1"), net.gm("h2")
        got = []
        mid_route = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        def tx():
            for i in range(12):
                a.send(h2, 1024, tag=i)
                yield Timeout(60_000.0)

        def snapshot():
            # After the fault's remap but before the repair.
            mid_route.append(net.nics[h1].route_table.lookup(h2))

        net.sim.process(rx(), name="rx")
        net.sim.process(tx(), name="tx")
        net.sim.schedule(100_000.0 + plan.remap_delay_ns + 1_000.0,
                         snapshot)
        net.sim.run(until=200_000_000)
        # Mid-outage the ITB route re-split through the alternate host.
        assert len(mid_route) == 1
        assert len(mid_route[0].segments) == 2
        assert mid_route[0].segments[0].dst == hy
        # The repair's remap restored the original in-transit host.
        final = net.nics[h1].route_table.lookup(h2)
        assert final.segments[0].dst == hx
        # Reliability rode out both transitions: all 12 delivered.
        assert sorted(got) == list(range(12))
        assert plan.remap_events == 2


class TestGracefulDegradation:
    def test_unrecoverable_host_down_fails_sends_not_sim(self):
        net = build()
        plan = FaultPlan(events=(
            FaultEvent(kind="host-down", target=net.roles["host2"],
                       at_ns=50_000.0),  # never repaired
        ))
        install_fault_plan(net, plan)
        a = net.gm("host1")
        a.max_retries = 4
        a.resend_timeout_ns = 50_000.0
        outcomes = []

        def waiter(done):
            try:
                yield done
                outcomes.append("ok")
            except GmSendError:
                outcomes.append("failed")

        def tx():
            for i in range(3):
                net.sim.process(waiter(a.send(net.roles["host2"], 1024)))
                yield Timeout(100_000.0)

        net.sim.process(tx(), name="tx")
        net.sim.run(until=100_000_000)  # completes: no exception, no wedge
        assert len(outcomes) == 3
        assert outcomes.count("failed") >= 2  # sends after the fault
        assert a.send_errors >= 1
        for ch in net.fabric.channels():
            assert not ch.resource.in_use


class TestDeterminism:
    def test_identical_runs_identical_counters(self):
        from repro.harness.faultcamp import measure_fault_point

        rows = [
            measure_fault_point(
                loss=0.1, corrupt=0.05, schedule="campaign",
                n_messages=6, message_size=2048, seed=21)
            for _ in range(2)
        ]
        assert dataclasses.asdict(rows[0]) == dataclasses.asdict(rows[1])
        assert rows[0].retransmissions > 0  # the point exercised faults


class TestLossyAllsizeAcceptance:
    def test_five_percent_loss_allsize_zero_lost_messages(self):
        """The headline acceptance: 5% loss on every link, a fig7-style
        size ladder completes with zero lost messages, and the
        retransmissions show up in the obs registry."""
        from repro.obs.attach import instrument_network

        net = build()
        telemetry = instrument_network(net, fabric_usage=False)
        plan = FaultPlan(loss_probability=0.05, seed=5)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        sizes = (16, 256, 1024, 4096, 16384, 65536)
        per_size = 3
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append((msg.length, msg.tag))

        def tx():
            for size in sizes:
                for i in range(per_size):
                    a.send(b.host, size, tag=i)
                    yield Timeout(20_000.0)

        net.sim.process(rx(), name="rx")
        net.sim.process(tx(), name="tx")
        net.sim.run(until=400_000_000)
        expected = [(size, i) for size in sizes for i in range(per_size)]
        assert sorted(got) == sorted(expected)  # zero lost messages
        assert plan.lost > 0  # the plan really dropped packets
        assert a.messages_failed == 0 and a.send_errors == 0
        retx = sum(m.value for m in telemetry.registry.collect()
                   if m.name == "gm_retransmits")
        assert retx > 0
        assert retx == a.retransmissions + b.retransmissions
