"""Tests for the distributed-application kernels (EXP-M2)."""

from __future__ import annotations

import pytest

from repro.harness.apps import KERNELS, run_app_comparison, run_kernel
from repro.harness.throughput import build_load_network
from repro.topology.generators import random_irregular


def small_net(routing="itb", seed=4):
    topo = random_irregular(6, seed=seed, hosts_per_switch=1)
    return build_load_network(topo, routing)


class TestRunKernel:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            run_kernel(small_net(), "game-of-life")

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_kernel_completes(self, kernel):
        res = run_kernel(small_net(), kernel, iterations=2,
                         message_size=256)
        assert res.completion_ns > 0
        assert res.messages > 0
        assert res.kernel == kernel

    def test_message_counts(self):
        net = small_net()
        n = len(net.gm_hosts)
        res = run_kernel(net, "all-to-all", iterations=2, message_size=64)
        assert res.messages == 2 * n * (n - 1)
        res_ring = run_kernel(small_net(), "ring", iterations=3,
                              message_size=64)
        assert res_ring.messages == 3 * n

    def test_deterministic(self):
        a = run_kernel(small_net(), "random-pairs", iterations=2, seed=9)
        b = run_kernel(small_net(), "random-pairs", iterations=2, seed=9)
        assert a.completion_ns == b.completion_ns

    def test_more_iterations_take_longer(self):
        short = run_kernel(small_net(), "ring", iterations=1)
        long = run_kernel(small_net(), "ring", iterations=4)
        assert long.completion_ns > short.completion_ns


class TestComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return run_app_comparison(
            n_switches=8, kernels=("all-to-all", "ring"),
            iterations=2, message_size=1024, hosts_per_switch=2,
        )

    def test_every_combination_present(self, results):
        combos = {(r.kernel, r.routing) for r in results}
        assert combos == {
            ("all-to-all", "updown"), ("all-to-all", "itb"),
            ("ring", "updown"), ("ring", "itb"),
        }

    def test_itb_never_catastrophically_slower(self, results):
        """ITB completion time stays within a small factor of
        up*/down* on every kernel (and typically wins on all-to-all
        as networks grow — benched in test_bench_apps.py)."""
        by = {(r.kernel, r.routing): r.completion_ns for r in results}
        for kernel in ("all-to-all", "ring"):
            ratio = by[(kernel, "itb")] / by[(kernel, "updown")]
            assert ratio < 1.25, f"{kernel}: ITB {ratio:.2f}x slower"

    def test_all_to_all_dominates_ring(self, results):
        """All-to-all moves n(n-1) messages per iteration vs n."""
        by = {(r.kernel, r.routing): r.completion_ns for r in results}
        assert by[("all-to-all", "updown")] > by[("ring", "updown")]
