"""Adaptive ITB host selection: oracle equivalence, legality, determinism.

The load-bearing contract of :mod:`repro.routing.selectors` is the
*zero-load oracle*: with no congestion signal every policy must
degrade to the paper's static placement, byte for byte — identical
route tables, identical goldens, identical span dumps, serial or
parallel.  Adaptivity may only engage on a live nonzero signal, and
even then each chosen route must stay inside the candidate set the
ITB router enumerated (so legality and deadlock-freedom are never at
the selector's mercy).  This module pins all of that down, plus the
fork-pool determinism of the seeded policies.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp import ExperimentSpec, Runner, get_experiment
from repro.gm.mapper import ItbReselector
from repro.harness.adaptive import (busiest_default_itb_host,
                                    measure_adaptive_point,
                                    shifting_hotspot_traffic)
from repro.harness.throughput import build_load_network
from repro.harness.workloads import drive_traffic, hotspot_traffic
from repro.obs.tracing import configure, disable
from repro.routing.cache import RouteCache
from repro.routing.cdg import is_deadlock_free
from repro.routing.itb import first_host_policy
from repro.routing.routes import RouteError
from repro.routing.selectors import (SELECTOR_NAMES, MapCongestionView,
                                     Selector, make_selector)
from repro.topology.generators import random_irregular

#: The 8-switch study fabric: seed 11 yields 8 ITB pairs whose default
#: in-transit host (22) shares its switch with host 23 — a real
#: two-candidate selection site.
N_SWITCHES, TOPO_SEED, HPS = 8, 11, 2


def _topo():
    return random_irregular(N_SWITCHES, seed=TOPO_SEED, hosts_per_switch=HPS)


def _build(policy=None, view=None, interval_ns=None):
    net = build_load_network(_topo(), "itb")
    reselector = None
    if policy is not None:
        selector = make_selector(policy, view=view)
        reselector = ItbReselector(net, selector, interval_ns=interval_ns)
    return net, reselector


def _snapshot(net):
    return {
        src: dict(net.nics[src].route_table.entries)
        for src in sorted(net.nics)
    }


def _itb_cuts(net):
    """Every (violation switch, src, dst) selection site in the tables."""
    cuts = []
    for src in sorted(net.nics):
        table = net.nics[src].route_table
        for dst in table.destinations():
            for host in table.entries[dst].itb_hosts:
                cuts.append((net.topo.switch_of(host), src, dst))
    return cuts


def _all_routes(net):
    routes = []
    for src in sorted(net.nics):
        table = net.nics[src].route_table
        routes.extend(table.entries[dst] for dst in table.destinations())
    return routes


# ---------------------------------------------------------------------------
# selector unit behaviour
# ---------------------------------------------------------------------------


class TestSelectors:
    def test_make_selector_covers_registry(self):
        for name in SELECTOR_NAMES:
            assert make_selector(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(RouteError, match="teleport"):
            make_selector("teleport")

    def test_no_view_is_static_everywhere(self):
        net, _ = _build()
        cuts = _itb_cuts(net)
        assert cuts, "study fabric must have ITB pairs"
        for name in SELECTOR_NAMES:
            sel = make_selector(name)
            for sw, src, dst in cuts:
                assert sel(net.topo, sw, src, dst) == \
                    first_host_policy(net.topo, sw, src, dst)

    def test_zero_view_is_static_everywhere(self):
        net, _ = _build()
        view = MapCongestionView()
        for name in SELECTOR_NAMES:
            sel = make_selector(name, view=view)
            for sw, src, dst in _itb_cuts(net):
                assert sel(net.topo, sw, src, dst) == \
                    first_host_policy(net.topo, sw, src, dst)

    def _two_candidate_cut(self, net):
        for sw, src, dst in _itb_cuts(net):
            if len(net.topo.hosts_on(sw)) >= 2:
                return sw, src, dst
        pytest.skip("no multi-candidate violation switch on this fabric")

    def test_least_loaded_diverts_off_loaded_static_pick(self):
        net, _ = _build()
        sw, src, dst = self._two_candidate_cut(net)
        candidates = net.topo.hosts_on(sw)
        view = MapCongestionView({candidates[0]: 1000.0})
        sel = make_selector("least-loaded", view=view)
        assert sel(net.topo, sw, src, dst) == candidates[1]
        assert sel.engaged == 1

    def test_least_loaded_returns_when_load_clears(self):
        net, _ = _build()
        sw, src, dst = self._two_candidate_cut(net)
        candidates = net.topo.hosts_on(sw)
        view = MapCongestionView({candidates[0]: 1000.0})
        sel = make_selector("least-loaded", view=view)
        assert sel(net.topo, sw, src, dst) == candidates[1]
        view.set_load(candidates[0], 0.0)
        assert sel(net.topo, sw, src, dst) == candidates[0]

    def test_ewma_remembers_recent_load(self):
        net, _ = _build()
        sw, src, dst = self._two_candidate_cut(net)
        candidates = net.topo.hosts_on(sw)
        view = MapCongestionView({candidates[0]: 1000.0})
        sel = make_selector("ewma", view=view)
        assert sel(net.topo, sw, src, dst) == candidates[1]
        # Load moves to the alternate; the smoothed history still
        # penalises the old hotspot more, so the pick sticks until the
        # average crosses over.
        view.set_load(candidates[0], 0.0)
        view.set_load(candidates[1], 10.0)
        assert sel(net.topo, sw, src, dst) == candidates[1]

    def test_random_stays_in_candidates_and_replays(self):
        net, _ = _build()
        cuts = _itb_cuts(net)
        view = MapCongestionView({h: 1.0 for h in net.topo.hosts()})
        a = make_selector("random", view=view, seed=5)
        b = make_selector("random", view=view, seed=5)
        picks_a = [a(net.topo, sw, s, d) for sw, s, d in cuts]
        picks_b = [b(net.topo, sw, s, d) for sw, s, d in reversed(cuts)]
        assert picks_a == list(reversed(picks_b))
        for (sw, _s, _d), pick in zip(cuts, picks_a):
            assert pick in net.topo.hosts_on(sw)

    def test_roundrobin_cycles_with_epoch(self):
        net, _ = _build()
        sw, src, dst = self._two_candidate_cut(net)
        candidates = net.topo.hosts_on(sw)
        view = MapCongestionView({candidates[0]: 1.0})
        sel = make_selector("roundrobin", view=view)
        seen = set()
        for _ in range(len(candidates)):
            seen.add(sel(net.topo, sw, src, dst))
            sel.begin_epoch()
        assert seen == set(candidates)

    def test_out_of_candidates_choice_is_rejected(self):
        class Rogue(Selector):
            name = "rogue"

            def choose(self, topo, switch, src, dst, candidates, loads):
                return -1

        net, _ = _build()
        sw, src, dst = self._two_candidate_cut(net)
        rogue = Rogue(view=MapCongestionView({net.topo.hosts_on(sw)[0]: 1.0}))
        with pytest.raises(RouteError, match="not a"):
            rogue(net.topo, sw, src, dst)


# ---------------------------------------------------------------------------
# zero-load oracle: every policy IS static until a signal exists
# ---------------------------------------------------------------------------


class TestZeroLoadOracle:
    def test_reselection_is_identity_for_every_policy(self):
        static, _ = _build()
        want = _snapshot(static)
        for name in SELECTOR_NAMES:
            for view in (None, MapCongestionView()):
                net, reselector = _build(name, view=view)
                for _ in range(3):
                    reselector.reselect()
                assert _snapshot(net) == want, (name, view)
                assert reselector.pairs_changed == 0

    def test_span_dumps_byte_identical_to_static(self):
        def traced_run(policy):
            try:
                configure(sample_every=1)
                net, _reselector = _build(policy, view=MapCongestionView(),
                                          interval_ns=10_000.0)
                hosts = sorted(net.gm_hosts)
                hot = busiest_default_itb_host(net)
                drive_traffic(net, 0.02, 512, 40_000.0,
                              pattern=hotspot_traffic(hosts, hot),
                              seed=7, warmup_ns=5_000.0)
                return net.fabric.tracer.dump_json()
            finally:
                disable()

        want = traced_run("static")
        assert '"itb_' in want or want  # static dump is the reference
        for name in SELECTOR_NAMES:
            assert traced_run(name) == want, name

    def test_experiment_rows_collapse_to_static_at_zero_view(self):
        exp = get_experiment("adaptive-itb")
        spec = exp.default_spec().replace(
            duration_ns=30_000.0, warmup_ns=6_000.0,
            params={**exp.default_spec().params,
                    "switch_list": (8,), "view": "zero"},
        )
        report = Runner(cache=RouteCache()).run(spec)
        rows = report.result.rows
        by_matrix = {}
        for row in rows:
            by_matrix.setdefault(row.matrix, []).append(row)
        for matrix, group in by_matrix.items():
            static = [r for r in group if r.policy == "static"][0]
            for row in group:
                assert row.stats == static.stats, (matrix, row.policy)
                assert row.reselect_changed == 0
                assert row.engaged == 0


# ---------------------------------------------------------------------------
# any occupancy history keeps routes legal and deadlock-free
# ---------------------------------------------------------------------------


class TestSelectionLegality:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.floats(min_value=0.0, max_value=1e9,
                            allow_nan=False, allow_infinity=False)),
        max_size=24,
    ))
    def test_any_occupancy_history_yields_legal_tables(self, updates):
        view = MapCongestionView()
        net, reselector = _build("least-loaded", view=view)
        hosts = sorted(net.gm_hosts)
        for idx, load in updates:
            view.set_load(hosts[idx % len(hosts)], load)
            reselector.reselect()
        for sw, _src, _dst in _itb_cuts(net):
            assert net.topo.hosts_on(sw), "ITB host must sit on its switch"
        for route in _all_routes(net):
            for host, nxt in zip(route.itb_hosts, route.segments[1:]):
                assert nxt.src == host
                assert host in net.topo.hosts_on(net.topo.switch_of(host))
        assert is_deadlock_free(net.topo, _all_routes(net))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_policy_tables_always_legal(self, seed):
        adaptive, _ = _build()
        view = MapCongestionView()
        for h in sorted(adaptive.gm_hosts):
            view.set_load(h, float((h * 2654435761) % 97) + 1.0)
        selector = make_selector("random", view=view, seed=seed)
        reselector = ItbReselector(adaptive, selector)
        reselector.reselect()
        for route in _all_routes(adaptive):
            for host in route.itb_hosts:
                assert host in adaptive.topo.hosts_on(
                    adaptive.topo.switch_of(host))
        assert is_deadlock_free(adaptive.topo, _all_routes(adaptive))


# ---------------------------------------------------------------------------
# fork-pool determinism (satellite: jobs-1 vs jobs-4 byte identity)
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _quick_spec(self):
        exp = get_experiment("adaptive-itb")
        return exp.default_spec().replace(
            duration_ns=30_000.0, warmup_ns=6_000.0,
            params={**exp.default_spec().params,
                    "switch_list": (8,),
                    "policies": ("static", "random", "least-loaded")},
        )

    def test_jobs_1_vs_4_results_byte_identical(self, tmp_path):
        from repro.harness.persist import save_results

        spec = self._quick_spec()
        paths = []
        for jobs in (1, 4):
            report = Runner(cache=RouteCache()).run(spec, jobs=jobs)
            path = tmp_path / f"jobs{jobs}.json"
            save_results(path, {"adaptive-itb": report.result},
                         specs={"adaptive-itb": spec})
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_measure_point_replays_exactly(self):
        kwargs = dict(
            policy="least-loaded", matrix="shifting", rate=0.04,
            n_switches=8, packet_size=512, duration_ns=30_000.0,
            warmup_ns=6_000.0, topo_seed=11, traffic_seed=7,
            hosts_per_switch=2,
        )
        a = measure_adaptive_point(**kwargs)
        b = measure_adaptive_point(**kwargs)
        assert a.stats == b.stats
        assert (a.reselect_changed, a.engaged) == \
            (b.reselect_changed, b.engaged)


# ---------------------------------------------------------------------------
# harness odds and ends
# ---------------------------------------------------------------------------


class TestHarness:
    def test_busiest_host_is_an_itb_host(self):
        net, _ = _build()
        hot = busiest_default_itb_host(net)
        assert hot is not None
        assert any(hot in r.itb_hosts for r in _all_routes(net))

    def test_shifting_pattern_cycles_hotspots(self):
        clock = {"t": 0.0}
        pattern = shifting_hotspot_traffic(
            [0, 1, 2, 3], hotspots=[1, 2], period_ns=100.0,
            now_fn=lambda: clock["t"], fraction=1.0,
        )

        class AlwaysHot:
            def random(self):
                return 0.0

            def integers(self, n):
                return 0

        rng = AlwaysHot()
        assert pattern(0, rng) == 1
        clock["t"] = 150.0
        assert pattern(0, rng) == 2
        clock["t"] = 250.0
        assert pattern(0, rng) == 1

    def test_shifting_pattern_validates_inputs(self):
        with pytest.raises(ValueError):
            shifting_hotspot_traffic([0], [], 10.0, lambda: 0.0)
        with pytest.raises(ValueError):
            shifting_hotspot_traffic([0], [0], 0.0, lambda: 0.0)
        with pytest.raises(ValueError):
            shifting_hotspot_traffic([0], [0], 10.0, lambda: 0.0,
                                     fraction=1.5)

    def test_unknown_matrix_and_view_raise(self):
        with pytest.raises(ValueError, match="matrix"):
            measure_adaptive_point(
                "static", "mesh", 0.02, 8, 512, 10_000.0, 2_000.0,
                11, 7, 2)
        with pytest.raises(ValueError, match="view"):
            measure_adaptive_point(
                "static", "hotspot", 0.02, 8, 512, 10_000.0, 2_000.0,
                11, 7, 2, view="psychic")
