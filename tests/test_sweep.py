"""Tests for the generic parameter-sweep utility."""

from __future__ import annotations

import pytest

from repro.harness.sweep import SweepPoint, sweep


def _square(a):
    """Module-level measure fn (picklable, so it can fan out)."""
    return a * a


def _fragile(a):
    """Module-level measure fn that fails on one point."""
    if a == 2:
        raise RuntimeError("boom at a=2")
    return a * 10


class TestSweep:
    def test_cartesian_product_in_order(self):
        calls = []

        def fn(a, b):
            calls.append((a, b))
            return a * b

        result = sweep(fn, {"a": [1, 2], "b": [10, 20]})
        assert calls == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert [p.value for p in result.points] == [10, 20, 20, 40]

    def test_fixed_parameters(self):
        result = sweep(lambda a, scale: a * scale,
                       {"a": [1, 2, 3]}, fixed={"scale": 100})
        assert [p.value for p in result.points] == [100, 200, 300]

    def test_fixed_axis_clash_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda a: a, {"a": [1]}, fixed={"a": 2})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda: 0, {})

    def test_error_aborts_by_default(self):
        def fn(a):
            if a == 2:
                raise RuntimeError("boom")
            return a

        with pytest.raises(RuntimeError):
            sweep(fn, {"a": [1, 2, 3]})

    def test_error_isolation(self):
        def fn(a):
            if a == 2:
                raise RuntimeError("boom")
            return a

        result = sweep(fn, {"a": [1, 2, 3]}, isolate_errors=True)
        assert len(result) == 3
        assert len(result.failures) == 1
        assert not result.points[1].ok
        assert "boom" in result.points[1].error

    def test_values_filter(self):
        result = sweep(lambda a, b: a + b, {"a": [1, 2], "b": [10, 20]})
        assert result.values(a=1) == [11, 21]
        assert result.values(a=2, b=20) == [22]

    def test_best(self):
        result = sweep(lambda a: a * a, {"a": [-3, 1, 2]})
        assert result.best(key=lambda v: v).params == {"a": -3}
        assert result.best(key=lambda v: v, maximize=False).params == {"a": 1}

    def test_best_requires_success(self):
        result = sweep(lambda a: 1 / 0, {"a": [1]}, isolate_errors=True)
        with pytest.raises(ValueError):
            result.best(key=lambda v: v)

    def test_on_point_callback(self):
        seen: list[SweepPoint] = []
        sweep(lambda a: a, {"a": [5, 6]}, on_point=seen.append)
        assert [p.params["a"] for p in seen] == [5, 6]

    def test_table_rows(self):
        result = sweep(lambda a: (a, a * 2), {"a": [1, 2]})
        rows = result.table_rows(extract=lambda v: [v[1]])
        assert rows == [(1, 2), (2, 4)]

    def test_raising_fn_marks_point_not_ok_without_aborting(self):
        """A raising measure function fails its point, not the sweep."""
        result = sweep(_fragile, {"a": [1, 2, 3]}, isolate_errors=True)
        assert len(result) == 3
        assert [p.ok for p in result.points] == [True, False, True]
        assert [p.value for p in result.points] == [10, None, 30]
        # The exception message is captured on the failed point...
        assert "boom at a=2" in result.points[1].error
        # ... and surfaced by the tabulation helpers.
        rows = result.table_rows(extract=lambda v: [v])
        assert rows[1] == (2, "ERROR: RuntimeError('boom at a=2')")
        assert result.failures == [result.points[1]]


class TestParallelSweep:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            sweep(_square, {"a": [1, 2]}, jobs=0)

    def test_parallel_matches_serial(self):
        serial = sweep(_square, {"a": [1, 2, 3, 4]})
        parallel = sweep(_square, {"a": [1, 2, 3, 4]}, jobs=4)
        assert [p.value for p in parallel.points] == \
            [p.value for p in serial.points]
        assert [p.params for p in parallel.points] == \
            [p.params for p in serial.points]

    def test_parallel_error_isolation(self):
        result = sweep(_fragile, {"a": [1, 2, 3]}, jobs=3,
                       isolate_errors=True)
        assert [p.ok for p in result.points] == [True, False, True]
        assert "boom at a=2" in result.points[1].error

    def test_parallel_on_point_in_order(self):
        seen: list[SweepPoint] = []
        sweep(_square, {"a": [5, 6, 7]}, jobs=2, on_point=seen.append)
        assert [p.params["a"] for p in seen] == [5, 6, 7]


class TestSweepWithSimulator:
    def test_timing_sensitivity_study(self):
        """Real use: per-ITB overhead as a function of the firmware
        cycle budget — monotone by construction."""
        from repro.core.timings import Timings
        from repro.harness.fig8 import run_fig8

        def overhead(cycles):
            t = Timings().with_overrides(
                itb_early_recv_cycles=cycles,
                host_jitter_sigma_ns=0.0,
            )
            return run_fig8(sizes=(64,), iterations=3,
                            timings=t).rows[0].overhead_ns

        result = sweep(overhead, {"cycles": [10, 40, 70]})
        values = [p.value for p in result.points]
        assert values == sorted(values)
        assert values[-1] - values[0] == pytest.approx(
            60 * Timings().lanai_cycle_ns, rel=0.05)
