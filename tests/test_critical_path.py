"""Critical-path latency attribution: exactness and category rules.

The analyzer's headline invariant: per-trace category durations sum
**bit exactly** (``float`` equality, no tolerance) to the measured
end-to-end latency ``root.end - root.start``.  Checked on synthetic
span trees exercising each priority rule, then as a property over
every trace of real fig7 / fig8 runs and a fault campaign with
retransmissions.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.exp import ExperimentSpec, Runner
from repro.network.faults import FaultEvent, FaultPlan, install_fault_plan
from repro.obs.critical_path import (
    CATEGORIES,
    breakdown_dump,
    breakdown_trace,
    observe_breakdowns,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import SpanTracer, configure, disable, load_dump
from repro.sim.engine import Timeout


def assert_exact(breakdown):
    """The bit-exactness invariant, spelled once."""
    assert float(breakdown.exact_total()) == breakdown.total_ns
    assert all(f >= 0 for f in breakdown.fractions.values())
    assert set(breakdown.fractions) == set(CATEGORIES)


# ---------------------------------------------------------------------------
# synthetic trees: one per priority rule
# ---------------------------------------------------------------------------


class TestSyntheticTrees:
    def _chain(self):
        """message > attempt > sdma, wire, recv — no overlap."""
        tr = SpanTracer()
        root = tr.begin("message", 0.1)
        att = tr.begin("attempt", 0.1, parent=root)
        tr.begin("sdma", 0.1, parent=att).close(1.3)
        tr.begin("wire", 1.3, parent=att).close(4.7)
        tr.begin("recv", 4.7, parent=att).close(9.2)
        att.close(9.2)
        root.close(9.2)
        return tr

    def test_simple_chain_partitions_exactly(self):
        b = breakdown_trace(self._chain().spans)
        assert_exact(b)
        cats = b.categories
        assert cats["host"] == 1.2
        assert cats["recv"] == float(Fraction(9.2) - Fraction(4.7))
        assert cats["retransmit"] == 0.0

    def test_cut_through_overlap_wire_wins(self):
        """The ITB buffer residency overlaps the next wire segment;
        only the non-overlapped part counts as buffer time."""
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        att = tr.begin("attempt", 0.0, parent=root)
        tr.begin("itb_buffer", 2.0, parent=att).close(8.0)
        tr.begin("wire", 5.0, parent=att).close(10.0)  # overlaps 5..8
        att.close(10.0)
        root.close(10.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.categories["itb_buffer"] == 3.0  # 2..5 only
        assert b.categories["wire"] == 5.0
        assert b.categories["host"] == 2.0  # 0..2 uninstrumented

    def test_hop_blocking_outranks_wire(self):
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        att = tr.begin("attempt", 0.0, parent=root)
        wire = tr.begin("wire", 0.0, parent=att)
        tr.begin("hop0", 1.0, parent=wire).close(4.0)  # blocked 3 ns
        wire.close(10.0)
        att.close(10.0)
        root.close(10.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.categories["switch_blocking"] == 3.0
        assert b.categories["wire"] == 7.0

    def test_recv_wait_outranks_wire(self):
        """Receive-buffer backpressure during wire streaming is buffer
        time, not wire time."""
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        att = tr.begin("attempt", 0.0, parent=root)
        tr.begin("wire", 0.0, parent=att).close(10.0)
        tr.begin("recv_wait", 4.0, parent=att).close(6.0)
        att.close(10.0)
        root.close(10.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.categories["itb_buffer"] == 2.0
        assert b.categories["wire"] == 8.0

    def test_gap_is_retransmit_when_retried(self):
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        a0 = tr.begin("attempt", 0.0, parent=root, retry=0)
        tr.begin("wire", 0.0, parent=a0).close(3.0)
        a0.close(3.0, "killed")
        a1 = tr.begin("attempt", 8.0, parent=a0, retry=1)
        tr.begin("wire", 8.0, parent=a1).close(11.0)
        a1.close(11.0)
        root.close(11.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.n_attempts == 2
        assert b.categories["retransmit"] == 5.0  # the 3..8 hole
        assert b.categories["wire"] == 6.0

    def test_gap_is_host_on_clean_single_attempt(self):
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        att = tr.begin("attempt", 0.0, parent=root)
        tr.begin("wire", 2.0, parent=att).close(5.0)
        att.close(5.0)
        root.close(6.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.categories["host"] == 3.0  # 0..2 and 5..6
        assert b.categories["retransmit"] == 0.0

    def test_control_subtree_excluded(self):
        """An ack subtree's wire time never claims data-path intervals."""
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        att = tr.begin("attempt", 0.0, parent=root)
        tr.begin("wire", 0.0, parent=att).close(4.0)
        ack = tr.begin("ack", 4.0, parent=root)
        tr.begin("wire", 4.0, parent=ack).close(9.0)
        ack.close(9.0)
        att.close(4.0)
        root.close(10.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.categories["wire"] == 4.0
        assert b.categories["host"] == 6.0  # ack window is a data gap

    def test_open_root_returns_none(self):
        tr = SpanTracer()
        tr.begin("message", 0.0)
        assert breakdown_trace(tr.spans) is None
        assert breakdown_dump(tr.spans) == []

    def test_spans_clipped_to_root_window(self):
        """A gm_recv span outliving the root close never inflates the
        total past the measured latency."""
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        tr.begin("gm_recv", 4.0, parent=root).close(20.0)
        root.close(10.0)
        b = breakdown_trace(tr.spans)
        assert_exact(b)
        assert b.total_ns == 10.0
        assert b.categories["host"] == 10.0


# ---------------------------------------------------------------------------
# property over real runs
# ---------------------------------------------------------------------------


class TestRealRunsExact:
    def _run_traced(self, experiment: str) -> list:
        try:
            configure(sample_every=1)
            spec = ExperimentSpec(experiment=experiment, sizes=(16, 1024),
                                  iterations=2)
            report = Runner().run(spec)
        finally:
            disable()
        assert report.span_dumps, "traced run produced no span dumps"
        breakdowns = []
        for dump in report.span_dumps:
            breakdowns.extend(breakdown_dump(load_dump(dump)))
        return breakdowns

    def test_fig7_every_trace_bit_exact(self):
        breakdowns = self._run_traced("fig7")
        assert breakdowns
        for b in breakdowns:
            assert_exact(b)

    def test_fig8_every_trace_bit_exact_with_itb(self):
        breakdowns = self._run_traced("fig8")
        assert breakdowns
        for b in breakdowns:
            assert_exact(b)
        # The ITB direction of fig8 must actually attribute buffer or
        # re-injection time somewhere.
        assert any(b.categories["itb_buffer"] > 0
                   or b.categories["reinject"] > 0 for b in breakdowns)

    def test_fault_campaign_with_retransmissions_bit_exact(self):
        """Cut every inter-switch cable under a reliable send: the
        delivered message's breakdown stays exact and attributes the
        dead time to ``retransmit``."""
        tracer = SpanTracer()
        cfg = NetworkConfig(
            firmware="itb", routing="itb", reliable=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        net.fabric.tracer = tracer
        sw1, sw2 = net.roles["sw1"], net.roles["sw2"]
        links = sorted(
            link.link_id for link in net.topo.links
            if {link.node_a, link.node_b} == {sw1, sw2})
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="link-down", target=link_id, at_ns=2_000.0,
                       repair_ns=500_000.0)
            for link_id in links))
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        def tx():
            yield Timeout(100.0)
            a.send(b.host, 4096, tag=1)

        net.sim.process(rx(), name="rx")
        net.sim.process(tx(), name="tx")
        net.sim.run(until=60_000_000)
        assert got == [1]
        breakdowns = breakdown_dump(tracer.spans)
        assert breakdowns
        retried = [bd for bd in breakdowns if bd.n_attempts > 1]
        assert retried, "campaign produced no retransmissions"
        for bd in breakdowns:
            assert_exact(bd)
        assert any(bd.categories["retransmit"] > 0 for bd in retried)


# ---------------------------------------------------------------------------
# histogram aggregation
# ---------------------------------------------------------------------------


class TestObserveBreakdowns:
    def test_histograms_labeled_by_category(self):
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        att = tr.begin("attempt", 0.0, parent=root)
        tr.begin("wire", 100.0, parent=att).close(400.0)
        att.close(400.0)
        root.close(400.0)
        reg = MetricsRegistry()
        observe_breakdowns(breakdown_dump(tr.spans), reg)
        wire = reg.get("latency_breakdown_ns", labels={"category": "wire"})
        host = reg.get("latency_breakdown_ns", labels={"category": "host"})
        assert wire.count == 1 and wire.sum == 300.0
        assert host.count == 1 and host.sum == 100.0
        # Zero-duration categories are skipped, not observed as 0.
        assert "latency_breakdown_ns" in reg
        assert len(reg) == 2

    def test_fractions_survive_float_conversion(self):
        f = Fraction(1, 3)
        assert float(f + f + f) == 1.0
