"""Partitioned engine, topology partitioner, and storm determinism.

Three layers under test:

* :mod:`repro.sim.partition` — protocol enforcement, same-instant
  ordering at partition boundaries, inline/forked executor identity,
  and a hypothesis property pinning the merged two-partition event
  stream to a single-calendar oracle.
* :mod:`repro.topology.partition` — balanced connected regions,
  gateway placement at the exact cut ports, loud failure on
  unroutable splits.
* :mod:`repro.harness.storm` — the determinism contract of
  ``docs/PARALLEL.md``: summaries are byte-identical for every
  ``engine_jobs`` value.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.storm import run_storm, storm_topology
from repro.sim.engine import Simulator, Timeout
from repro.sim.partition import Partition, PartitionedEngine, PartitionError
from repro.topology.graph import PortKind, Topology, TopologyError
from repro.topology.partition import partition_topology

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# protocol enforcement
# ---------------------------------------------------------------------------


def _pair(lookahead: float = 5.0, jobs: int = 1):
    """Two empty partitions under one engine, plus a shared event log."""
    log: list = []
    parts = [Partition(0, Simulator()), Partition(1, Simulator())]
    engine = PartitionedEngine(parts, lookahead=lookahead, jobs=jobs)
    return engine, parts, log


def test_engine_rejects_empty_partition_list():
    with pytest.raises(PartitionError, match="at least one"):
        PartitionedEngine([], lookahead=1.0)


def test_engine_rejects_nonpositive_lookahead():
    part = Partition(0, Simulator())
    with pytest.raises(PartitionError, match="lookahead"):
        PartitionedEngine([part], lookahead=0.0)


def test_engine_rejects_misnumbered_partition():
    parts = [Partition(0, Simulator()), Partition(0, Simulator())]
    with pytest.raises(PartitionError, match="position 1"):
        PartitionedEngine(parts, lookahead=1.0)


def test_send_enforces_lookahead_floor():
    engine, (a, _b), _log = _pair(lookahead=5.0)
    a.send(1, "p", "ok", delay=5.0)       # exactly the lookahead: fine
    a.send(1, "p", "ok")                  # default delay = lookahead
    with pytest.raises(PartitionError, match="undercuts"):
        a.send(1, "p", "bad", delay=4.999)
    assert len(a.drain_outbox()) == 2


def test_deliver_to_unknown_port_raises():
    engine, (_a, b), _log = _pair()
    with pytest.raises(PartitionError, match="no port"):
        b.deliver(1.0, 0, "nowhere", None)


def test_drain_outbox_empties():
    engine, (a, _b), _log = _pair()
    a.send(1, "p", 1)
    assert len(a.drain_outbox()) == 1
    assert a.drain_outbox() == []


# ---------------------------------------------------------------------------
# same-instant ordering at partition boundaries
# ---------------------------------------------------------------------------


def test_delivery_ranks_after_preexisting_same_instant_event():
    """A boundary message landing at time T is scheduled *after* a
    local callback already in the calendar at T — ``schedule_at``'s
    ``(time, priority, seq)`` order, with the delivery holding the
    larger seq because it enters the calendar later."""
    engine, (a, b), log = _pair(lookahead=5.0)
    b.on_message("port", lambda payload: log.append(("msg", payload)))
    b.sim.schedule_at(5.0, lambda: log.append(("local", b.sim.now)))
    a.sim.schedule_at(0.0, lambda: a.send(1, "port", "x"))  # lands at 5.0
    engine.run(until=20.0)
    assert log == [("local", 5.0), ("msg", "x")]


def test_delivery_priority_breaks_same_instant_ties():
    """``deliver`` honors the message priority: a negative-priority
    delivery at T outranks the default-priority local event at T."""
    engine, (_a, b), log = _pair(lookahead=5.0)
    b.on_message("port", lambda payload: log.append("msg"))
    b.sim.schedule_at(5.0, lambda: log.append("local"))
    b.deliver(5.0, -1, "port", None)
    engine.run(until=20.0)
    assert log == ["msg", "local"]


def test_process_now_inside_delivery_keeps_fifo_position():
    """A handler that starts a process with ``process_now`` runs its
    first step inside the delivery callback — ahead of a same-instant
    calendar entry scheduled after the delivery."""
    engine, (a, b), log = _pair(lookahead=5.0)

    def handler(payload):
        def proc():
            log.append("proc-step")
            yield Timeout(1.0)
            log.append("proc-late")
        b.sim.process_now(proc())
        b.sim.schedule(0.0, lambda: log.append("after"))

    b.on_message("port", handler)
    a.sim.schedule_at(0.0, lambda: a.send(1, "port", None))
    engine.run(until=20.0)
    assert log == ["proc-step", "after", "proc-late"]


def test_messages_past_until_are_dropped_and_counted():
    engine, (a, _b), _log = _pair(lookahead=5.0)
    a.sim.schedule_at(8.0, lambda: a.send(1, "port", None))  # lands at 13
    engine.run(until=10.0)
    assert engine.stats["dropped"] == 1
    assert engine.stats["messages"] == 0


# ---------------------------------------------------------------------------
# merged stream == single-calendar oracle (hypothesis)
# ---------------------------------------------------------------------------

LOOKAHEAD = 4.0


@given(
    sends=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),        # src partition
            st.integers(min_value=0, max_value=12),       # send time
            st.integers(min_value=0, max_value=8),        # extra delay
        ),
        min_size=1, max_size=24,
    )
)
@settings(max_examples=60, deadline=None)
def test_merged_two_partition_stream_matches_single_calendar_oracle(sends):
    """The engine's delivery stream equals one calendar running the
    same schedule: for each generated send, partition ``src`` emits a
    message at ``t_send`` that lands in the other partition at
    ``t_send + LOOKAHEAD + extra``.  The oracle replays the identical
    merge order — sorted ``(time, priority, src, seq)`` — on a single
    :class:`Simulator`.  The contract is *per destination* (partitions
    execute concurrently, so only each partition's own stream has a
    defined order): any window-protocol reordering would split the
    per-destination logs."""
    until = 64.0

    # -- engine run --------------------------------------------------------
    log: list = []
    parts = [Partition(0, Simulator()), Partition(1, Simulator())]
    engine = PartitionedEngine(parts, lookahead=LOOKAHEAD)
    for i, part in enumerate(parts):
        part.on_message(
            "evt", lambda payload, i=i: log.append((parts[i].sim.now, i,
                                                    payload)))
    for n, (src, t_send, extra) in enumerate(sends):
        delay = LOOKAHEAD + float(extra)
        parts[src].sim.schedule_at(
            float(t_send),
            lambda src=src, delay=delay, n=n:
                parts[src].send(1 - src, "evt", n, delay=delay))
    engine.run(until=until)

    # -- single-calendar oracle -------------------------------------------
    expected_msgs = []
    seq = {0: 0, 1: 0}
    # Each partition numbers its sends in *execution* order: by send
    # time, list position breaking same-instant ties (``schedule_at``
    # keeps FIFO order among equal timestamps).
    for n, (src, t_send, extra) in sorted(enumerate(sends),
                                          key=lambda e: (e[1][1], e[0])):
        seq[src] += 1
        expected_msgs.append(
            (float(t_send) + LOOKAHEAD + extra, 0, src, seq[src], 1 - src, n))
    expected_msgs.sort(key=lambda m: m[:4])

    oracle = Simulator()
    oracle_log: list = []
    for t, _prio, _src, _seq, dst, n in expected_msgs:
        if t > until:
            continue
        oracle.schedule_at(t, lambda t=t, dst=dst, n=n:
                           oracle_log.append((t, dst, n)))
    oracle.run(until=until)

    for dst in (0, 1):
        assert ([e for e in log if e[1] == dst]
                == [e for e in oracle_log if e[1] == dst])
    assert engine.stats["messages"] + engine.stats["dropped"] == len(sends)


# ---------------------------------------------------------------------------
# inline vs forked executor identity
# ---------------------------------------------------------------------------


def _ping_pong_engine(jobs: int, rounds: int = 6):
    """Two partitions bouncing a counter; finalize returns the local
    event log so forked workers can ship it back over the pipe."""
    logs = [[], []]
    parts = [
        Partition(i, Simulator(), finalize=(lambda i=i: logs[i]))
        for i in range(2)
    ]
    engine = PartitionedEngine(parts, lookahead=3.0, jobs=jobs)

    def make_handler(i):
        def handler(count):
            logs[i].append((parts[i].sim.now, count))
            if count < rounds:
                parts[i].send(1 - i, "ball", count + 1)
        return handler

    for i, part in enumerate(parts):
        part.on_message("ball", make_handler(i))
    parts[0].sim.schedule_at(0.0, lambda: parts[0].send(1, "ball", 1))
    results = engine.run(until=100.0)
    return results, dict(engine.stats)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
def test_inline_and_forked_executors_are_identical():
    inline_results, inline_stats = _ping_pong_engine(jobs=1)
    forked_results, forked_stats = _ping_pong_engine(jobs=2)
    assert forked_stats["mode"] == "forked"
    assert inline_results == forked_results
    for key in ("windows", "messages", "dropped"):
        assert inline_stats[key] == forked_stats[key]


def test_single_partition_forced_inline():
    """jobs > 1 with one partition silently runs inline (nothing to
    parallelize)."""
    log = []
    part = Partition(0, Simulator(), finalize=lambda: list(log))
    engine = PartitionedEngine([part], lookahead=1.0, jobs=4)
    part.sim.schedule_at(2.0, lambda: log.append("x"))
    (result,) = engine.run(until=10.0)
    assert result == ["x"]
    assert engine.stats["mode"] == "inline"


# ---------------------------------------------------------------------------
# topology partitioner
# ---------------------------------------------------------------------------


def test_chain_partition_is_balanced_with_expected_cuts():
    topo = storm_topology(8, hosts_per_switch=2)
    plan = partition_topology(topo, 4)
    assert [len(sub.switches()) for sub in plan.subs] == [2, 2, 2, 2]
    # A chain of 8 cut into 4 contiguous pairs severs 3 trunks.
    assert len(plan.cut_links) == 3
    # One gateway host per cut side, named after the global link.
    assert len(plan.gateways) == 2 * len(plan.cut_links)
    for (part, link_id), gw in plan.gateways.items():
        sub = plan.subs[part]
        assert sub.is_host(gw)
        assert sub.node_name(gw) == f"gw{link_id}"
        assert gw not in plan.to_global[part]  # gateways are local-only


def test_hosts_follow_their_switch():
    topo = storm_topology(6, hosts_per_switch=2)
    plan = partition_topology(topo, 3)
    for host in topo.hosts():
        assert plan.part_of[host] == plan.part_of[topo.switch_of(host)]
        part = plan.part_of[host]
        local = plan.local_host(part, host)
        assert plan.to_global[part][local] == host


def test_cut_gateways_sit_on_the_cut_ports():
    topo = storm_topology(4, hosts_per_switch=1)
    plan = partition_topology(topo, 2)
    (link,) = plan.cut_links
    for (node, port), part in zip(link.endpoints(),
                                  (plan.part_of[link.node_a],
                                   plan.part_of[link.node_b])):
        gw = plan.gateways[(part, link.link_id)]
        sub = plan.subs[part]
        local_switch = plan.to_local[part][node]
        # The gateway's cable occupies the exact port the cut used.
        cables = [lk for lk in sub.links
                  if gw in (lk.node_a, lk.node_b)]
        assert len(cables) == 1
        assert cables[0].port_at(local_switch) == port
        assert cables[0].length_m == link.length_m


def test_min_cut_length_bounds_lookahead():
    topo = storm_topology(4, trunk_length_m=150.0)
    plan = partition_topology(topo, 2)
    assert plan.min_cut_length_m == 150.0
    single = partition_topology(topo, 1)
    with pytest.raises(TopologyError, match="no cut links"):
        _ = single.min_cut_length_m


def test_too_many_partitions_raises():
    topo = storm_topology(4)
    with pytest.raises(TopologyError, match="cannot cut"):
        partition_topology(topo, 5)
    with pytest.raises(TopologyError, match="cannot cut"):
        partition_topology(topo, 0)


def test_unroutable_split_fails_loudly():
    """A star fabric cut into 2: the second region inherits two leaves
    that only connect through the (assigned-away) hub — the validator
    must reject the disconnected sub-fabric with a pointed message."""
    topo = Topology(name="star")
    hub = topo.add_switch(n_ports=8)
    for _ in range(3):
        leaf = topo.add_switch(n_ports=8)
        topo.connect(hub, topo.free_port(hub), leaf, topo.free_port(leaf),
                     kind=PortKind.SAN, length_m=10.0)
    for sw in topo.switches():
        topo.attach_host(sw, topo.free_port(sw), kind=PortKind.SAN)
    topo.validate()
    with pytest.raises(TopologyError, match="unroutable"):
        partition_topology(topo, 2)


# ---------------------------------------------------------------------------
# storm determinism (the docs/PARALLEL.md contract)
# ---------------------------------------------------------------------------

_STORM_KW = dict(n_switches=4, n_parts=2, hosts_per_switch=1,
                 packet_size=512, rate=0.05, duration_ns=20_000.0,
                 cross_fraction=0.3, seed=7)


def test_storm_delivers_and_crosses():
    res = run_storm(**_STORM_KW)
    assert res.total("offered") > 0
    assert res.total("delivered") > 0
    assert res.total("cross_sent") > 0
    assert res.total("cross_delivered") == res.total("cross_sent")
    assert res.engine["windows"] > 0
    assert res.engine["messages"] >= res.total("cross_sent")
    assert res.mean_latency_ns > 0


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
def test_storm_summary_independent_of_engine_jobs():
    serial = run_storm(**_STORM_KW, engine_jobs=1)
    forked = run_storm(**_STORM_KW, engine_jobs=2)
    assert forked.execution["mode"] == "forked"
    assert serial.execution["mode"] == "inline"
    assert serial.summary() == forked.summary()


def test_storm_summary_is_seed_sensitive():
    base = run_storm(**_STORM_KW)
    other = run_storm(**{**_STORM_KW, "seed": 8})
    assert base.summary() != other.summary()


def test_attach_partition_engine_publishes_stats():
    """The obs bridge mirrors ``PartitionedEngine.stats`` live."""
    from repro.obs.attach import attach_partition_engine
    from repro.obs.registry import MetricsRegistry

    engine, (a, b), log = _pair(lookahead=5.0)
    b.on_message("evt", lambda payload: log.append(payload))
    registry = MetricsRegistry()
    attach_partition_engine(registry, engine)

    def read(name):
        (metric,) = [m for m in registry.collect() if m.name == name]
        return metric.value

    assert read("partition_windows") == 0
    a.sim.schedule(0.0, lambda: a.send(1, "evt", "x"))
    engine.run(until=20.0)
    assert read("partition_windows") == engine.stats["windows"] > 0
    assert read("partition_messages") == 1
    assert read("partition_dropped") == 0
    assert read("partition_sync_stall_seconds") == engine.stats["stall_s"]
    assert log  # the message really arrived
