"""Tests for PriorityStore and the Send machine's dispatch priorities."""

from __future__ import annotations


from repro.mcp.firmware import McpEventKind
from repro.sim.engine import Timeout
from repro.sim.resources import PriorityStore


class TestPriorityStore:
    def test_lower_priority_number_first(self, sim):
        store = PriorityStore(sim)
        store.put("low", priority=5)
        store.put("high", priority=1)
        assert store.get().value == "high"
        assert store.get().value == "low"

    def test_fifo_within_priority(self, sim):
        store = PriorityStore(sim)
        for i in range(5):
            store.put(i, priority=3)
        assert [store.get().value for _ in range(5)] == list(range(5))

    def test_get_blocks_until_put(self, sim):
        store = PriorityStore(sim)
        seen = []

        def getter():
            item = yield store.get()
            seen.append((sim.now, item))

        sim.process(getter())
        sim.schedule(25, lambda: store.put("late"))
        sim.run()
        assert seen == [(25.0, "late")]

    def test_waiting_getter_receives_best_available(self, sim):
        """An item put while a getter waits goes straight to it —
        priority among *future* puts is irrelevant to an empty queue,
        but queued items must drain best-first."""
        store = PriorityStore(sim)
        store.put("b", priority=2)
        store.put("a", priority=1)
        order = []

        def getter():
            for _ in range(2):
                item = yield store.get()
                order.append(item)
                yield Timeout(1)

        sim.process(getter())
        sim.run()
        assert order == ["a", "b"]

    def test_try_get(self, sim):
        store = PriorityStore(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("x", priority=0)
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_peek_priority(self, sim):
        store = PriorityStore(sim)
        assert store.peek_priority() is None
        store.put("x", priority=7)
        store.put("y", priority=3)
        assert store.peek_priority() == 3
        assert len(store) == 2


class TestSendMachinePriorities:
    def test_itb_pending_outranks_queued_sends(self):
        """With both a deferred re-injection and normal sends pending,
        the Send machine serves the re-injection first (Figure 5's
        'ITB packet pending' is a high-priority event)."""
        from repro.core.builder import build_network
        from repro.core.config import NetworkConfig
        from repro.core.timings import Timings
        from repro.harness.paths import fig6_paths
        from repro.sim.engine import Timeout as T

        cfg = NetworkConfig(
            firmware="itb", routing="updown", trace=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=cfg)
        paths = fig6_paths(net.topo, net.roles)
        itb_host = net.roles["itb"]
        h1, h2 = net.roles["host1"], net.roles["host2"]
        fw = net.nics[itb_host].firmware

        done = net.sim.event("all")
        results = []

        def on_final(tp):
            results.append(tp)
            if len(results) == 3:
                done.succeed()

        def scenario():
            # 1. Transit host starts a big send (occupies the engine).
            fw.host_send(dst=h2, payload_len=4096, gm={"last": True},
                         on_delivered=on_final)
            # 2. While it drains, an in-transit packet arrives (will be
            #    deferred: ITB-pending) AND another own send queues up.
            yield T(12_000.0)
            net.nics[h1].firmware.host_send(
                dst=h2, payload_len=64, gm={"last": True},
                on_delivered=on_final, route=paths.itb5)
            yield T(500.0)
            fw.host_send(dst=h2, payload_len=64, gm={"last": True},
                         on_delivered=on_final)

        net.sim.process(scenario(), name="scenario")
        net.sim.run_until_event(done)
        assert net.nics[itb_host].stats.itb_pending == 1
        # Ordering proof from the trace: the re-injection's inject
        # precedes the transit host's second own-packet inject.
        injects = [r for r in net.trace.records(kind="inject")
                   if r.component == f"nic[{net.topo.node_name(itb_host)}]"]
        kinds = [("reinject" if r.detail["seg"] > 0 else "own")
                 for r in injects]
        assert kinds == ["own", "reinject", "own"]

    def test_mcp_event_priorities_ordered(self):
        assert McpEventKind.EARLY_RECV < McpEventKind.ITB_PENDING
        assert McpEventKind.ITB_PENDING < McpEventKind.RECV_DONE
        assert McpEventKind.RECV_DONE < McpEventKind.SEND_DONE
        assert McpEventKind.SEND_DONE < McpEventKind.SDMA_DONE
