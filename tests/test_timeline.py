"""Tests for the packet-lifecycle timeline renderer."""

from __future__ import annotations


from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.harness.timeline import packet_timeline
from repro.sim.trace import Trace


def traced_net():
    cfg = NetworkConfig(
        firmware="itb", routing="updown", trace=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network("fig6", config=cfg)


def send_one(net, route=None, size=256):
    done = net.sim.event("one")
    holder = {}

    def on_final(tp):
        holder["tp"] = tp
        done.succeed()

    net.nics[net.roles["host1"]].firmware.host_send(
        dst=net.roles["host2"], payload_len=size, gm={"last": True},
        on_delivered=on_final, route=route,
    )
    net.sim.run_until_event(done)
    return holder["tp"]


class TestPacketTimeline:
    def test_plain_packet_lifecycle(self):
        net = traced_net()
        tp = send_one(net)
        tl = packet_timeline(net.trace, tp)
        labels = [label for (_t, _c, label) in tl.events]
        assert labels[0] == "injected"
        assert labels[-1] == "delivered to host"
        assert tl.span_ns > 0

    def test_itb_packet_lifecycle(self):
        net = traced_net()
        paths = fig6_paths(net.topo, net.roles)
        tp = send_one(net, route=paths.itb5)
        tl = packet_timeline(net.trace, tp)
        labels = [label for (_t, _c, label) in tl.events]
        assert "early-recv (ITB detect)" in labels
        assert "re-injected (fast path)" in labels
        assert any("segment 1" in l for l in labels)
        # Events are time-ordered.
        times = [t for (t, _c, _l) in tl.events]
        assert times == sorted(times)

    def test_accepts_raw_pid(self):
        net = traced_net()
        tp = send_one(net)
        assert packet_timeline(net.trace, tp.pid).pid == tp.pid

    def test_render_layout(self):
        net = traced_net()
        paths = fig6_paths(net.topo, net.roles)
        tp = send_one(net, route=paths.itb5)
        out = packet_timeline(net.trace, tp).render(width=30)
        lines = out.splitlines()
        assert str(tp.pid) in lines[0]
        # One strip per event, each containing exactly one marker.
        for line in lines[1:]:
            assert line.count("#") == 1
            assert "|" in line

    def test_unknown_pid_empty(self):
        tl = packet_timeline(Trace(), 424242)
        assert tl.events == []
        assert "no trace records" in tl.render()

    def test_single_event_span_zero(self):
        trace = Trace()
        trace.emit(5.0, "nic[x]", "inject", pid=1, seg=0)
        tl = packet_timeline(trace, 1)
        assert tl.span_ns == 0.0
        assert "injected" in tl.render()
