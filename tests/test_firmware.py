"""Tests for the MCP firmware: original GM vs the ITB modification."""

from __future__ import annotations

import pytest

from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.core.builder import build_network
from repro.sim.engine import Timeout


def quiet_config(**kw):
    defaults = dict(
        firmware="itb",
        routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        trace=True,
    )
    defaults.update(kw)
    return NetworkConfig(**defaults)


def send_one(net, src_role, dst_role, size=64, route=None):
    """Send one packet firmware-level and run to delivery (or drop)."""
    src = net.roles[src_role]
    dst = net.roles[dst_role]
    done = net.sim.event("one-packet")
    holder = {}

    def on_final(tp):
        holder["tp"] = tp
        done.succeed(tp)

    net.nics[src].firmware.host_send(
        dst=dst, payload_len=size, gm={"last": True},
        on_delivered=on_final, route=route,
    )
    net.sim.run_until_event(done)
    return holder["tp"]


class TestNormalPath:
    def test_delivery_end_to_end(self):
        net = build_network("fig6", config=quiet_config())
        tp = send_one(net, "host1", "host2")
        assert not tp.dropped
        assert tp.t_inject is not None
        assert tp.t_complete_dst > tp.t_inject
        assert tp.t_deliver > tp.t_complete_dst

    def test_stats_accumulate(self):
        net = build_network("fig6", config=quiet_config())
        for _ in range(3):
            send_one(net, "host1", "host2")
        assert net.nic("host1").stats.packets_sent == 3
        assert net.nic("host2").stats.packets_received == 3
        assert net.nic("host2").stats.bytes_received > 0

    def test_recv_path_overhead_delta(self):
        """The modified firmware's receive path is exactly
        itb_check_cycles slower per packet than the original's."""
        t = Timings().with_overrides(host_jitter_sigma_ns=0.0)
        lat = {}
        for fw in ("original", "itb"):
            net = build_network("fig6", config=quiet_config(firmware=fw,
                                                            timings=t))
            tp = send_one(net, "host1", "host2")
            lat[fw] = tp.t_deliver - tp.t_inject
        assert lat["itb"] - lat["original"] == pytest.approx(
            t.itb_check_ns, abs=1e-6)

    def test_sends_serialize_on_engine(self):
        """Two back-to-back sends share one send DMA: second injects
        only after the first drains."""
        net = build_network("fig6", config=quiet_config())
        tps = []
        done = net.sim.event("both")

        def on_final(tp):
            tps.append(tp)
            if len(tps) == 2:
                done.succeed()

        fw = net.nics[net.roles["host1"]].firmware
        for _ in range(2):
            fw.host_send(dst=net.roles["host2"], payload_len=2000,
                         gm={"last": True}, on_delivered=on_final)
        net.sim.run_until_event(done)
        first, second = sorted(tps, key=lambda tp: tp.t_inject)
        assert second.t_inject >= first.t_complete_dst


class TestItbForwarding:
    def test_original_firmware_drops_itb_packets(self):
        """The stock MCP does not know the new packet type."""
        net = build_network("fig6", config=quiet_config(firmware="original"))
        paths = fig6_paths(net.topo, net.roles)
        tp = send_one(net, "host1", "host2", route=paths.itb5)
        assert tp.dropped
        assert tp.drop_reason == "unknown-type"
        assert net.nic("itb").stats.packets_dropped_unknown == 1

    def test_modified_firmware_forwards(self):
        net = build_network("fig6", config=quiet_config())
        paths = fig6_paths(net.topo, net.roles)
        tp = send_one(net, "host1", "host2", route=paths.itb5)
        assert not tp.dropped
        assert net.nic("itb").stats.packets_forwarded == 1
        assert net.nic("itb").stats.itb_immediate == 1
        assert net.nic("itb").stats.itb_pending == 0

    def test_cut_through_reinjection(self):
        """Re-injection starts before reception of the packet
        completes — the virtual cut-through property of Section 4."""
        net = build_network("fig6", config=quiet_config())
        paths = fig6_paths(net.topo, net.roles)
        send_one(net, "host1", "host2", size=4096, route=paths.itb5)
        trace = net.trace
        reinject = trace.first("reinject_immediate")
        complete = trace.first("itb_recv_complete")
        assert reinject is not None and complete is not None
        assert reinject.time < complete.time

    def test_pending_path_when_engine_busy(self):
        """An in-transit packet arriving while the transit host's send
        engine is busy goes through the ITB-pending path."""
        net = build_network("fig6", config=quiet_config())
        paths = fig6_paths(net.topo, net.roles)
        itb_host = net.roles["itb"]
        h1, h2 = net.roles["host1"], net.roles["host2"]
        done = net.sim.event("fwd-done")

        def keep_engine_busy():
            # The transit host streams its own large packet; the
            # in-transit packet arrives while that drains.
            net.nics[itb_host].firmware.host_send(
                dst=h2, payload_len=4096, gm={"last": True})
            yield Timeout(0)

        def on_final(tp):
            done.succeed(tp)

        net.sim.process(keep_engine_busy(), name="busy")

        def send_later():
            # Arrive while the transit host's 4 KB packet drains onto
            # the wire (SDMA ~9 us + wire ~26 us).
            yield Timeout(12_000.0)
            net.nics[h1].firmware.host_send(
                dst=h2, payload_len=64, gm={"last": True},
                on_delivered=on_final, route=paths.itb5)

        net.sim.process(send_later(), name="later")
        tp = net.sim.run_until_event(done)
        assert not tp.dropped
        assert net.nic("itb").stats.itb_pending == 1

    def test_multi_itb_route(self):
        """A route through two in-transit hosts forwards twice."""
        from repro.routing.routes import ItbRoute, SourceRoute
        from repro.topology.graph import PortKind, Topology

        topo = Topology()
        sws = [topo.add_switch(n_ports=8) for _ in range(3)]
        topo.connect(sws[0], 0, sws[1], 0, kind=PortKind.SAN)
        topo.connect(sws[1], 1, sws[2], 1, kind=PortKind.SAN)
        src = topo.attach_host(sws[0], 2, name="src")
        t1 = topo.attach_host(sws[1], 2, name="t1")
        t2 = topo.attach_host(sws[2], 2, name="t2")
        dst = topo.attach_host(sws[2], 3, name="dst")
        route = ItbRoute((
            SourceRoute(src=src, dst=t1, ports=(0, 2),
                        switch_path=(sws[0], sws[1])),
            SourceRoute(src=t1, dst=t2, ports=(1, 2),
                        switch_path=(sws[1], sws[2])),
            SourceRoute(src=t2, dst=dst, ports=(3,),
                        switch_path=(sws[2],)),
        ))
        net = build_network(topo, config=quiet_config())
        done = net.sim.event("multi-itb")
        net.nics[src].firmware.host_send(
            dst=dst, payload_len=256, gm={"last": True},
            on_delivered=lambda tp: done.succeed(tp), route=route)
        tp = net.sim.run_until_event(done)
        assert not tp.dropped
        assert net.nics[t1].stats.packets_forwarded == 1
        assert net.nics[t2].stats.packets_forwarded == 1
        assert len(tp.itb_times) == 2

    def test_forward_does_not_touch_host(self):
        """In-transit packets never cross the transit host's PCI bus."""
        net = build_network("fig6", config=quiet_config())
        paths = fig6_paths(net.topo, net.roles)
        delivered_at_transit = []
        net.gm_hosts[net.roles["itb"]].nic.deliver_up = (
            lambda tp: delivered_at_transit.append(tp))
        send_one(net, "host1", "host2", route=paths.itb5)
        assert delivered_at_transit == []


class TestBackpressure:
    def test_fixed_buffers_stall_the_wire(self):
        """With both receive buffers busy, a third packet stalls
        (recv_blocked_ns grows) instead of being dropped."""
        net = build_network("fig6", config=quiet_config())
        h1, h2 = net.roles["host1"], net.roles["host2"]
        itb = net.roles["itb"]
        n_done = {"n": 0}
        done = net.sim.event("all-delivered")

        def on_final(tp):
            assert not tp.dropped
            n_done["n"] += 1
            if n_done["n"] == 6:
                done.succeed()

        # Large packets from two senders swamp host2's two buffers
        # (the RDMA drain is slower than the wire).
        for sender in (h1, itb):
            for _ in range(3):
                net.nics[sender].firmware.host_send(
                    dst=h2, payload_len=4096, gm={"last": True},
                    on_delivered=on_final)
        net.sim.run_until_event(done)
        assert n_done["n"] == 6
        assert net.nic("host2").stats.packets_received == 6
