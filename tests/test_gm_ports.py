"""Tests for GM ports and token flow control."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.ports import GmPort, GmPortError


def build():
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=True,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network("fig6", config=cfg)


class TestLifecycle:
    def test_open_and_close(self):
        net = build()
        port = GmPort(net.gm("host1"), 2)
        assert not port.closed
        port.close()
        assert port.closed
        with pytest.raises(GmPortError):
            port.receive()

    def test_duplicate_port_number_rejected(self):
        net = build()
        GmPort(net.gm("host1"), 2)
        with pytest.raises(GmPortError):
            GmPort(net.gm("host1"), 2)

    def test_same_number_on_different_hosts_ok(self):
        net = build()
        GmPort(net.gm("host1"), 2)
        GmPort(net.gm("host2"), 2)  # no clash

    def test_reopen_after_close(self):
        net = build()
        GmPort(net.gm("host1"), 2).close()
        GmPort(net.gm("host1"), 2)

    def test_validation(self):
        net = build()
        with pytest.raises(GmPortError):
            GmPort(net.gm("host1"), -1)
        with pytest.raises(GmPortError):
            GmPort(net.gm("host1"), 3, send_tokens=0)


class TestSendTokens:
    def test_tokens_consumed_and_returned(self):
        net = build()
        a = GmPort(net.gm("host1"), 2, send_tokens=2)
        b = GmPort(net.gm("host2"), 2)

        def receiver():
            pm = yield b.receive()
            assert pm.length == 64

        net.sim.process(receiver(), name="rx")
        assert a.send_tokens == 2
        done = a.send(net.roles["host2"], 2, 64)
        assert a.send_tokens == 1
        net.sim.run_until_event(done)
        net.sim.run(until=net.sim.now + 1)  # let the callback fire
        assert a.send_tokens == 2

    def test_out_of_tokens_raises(self):
        net = build()
        a = GmPort(net.gm("host1"), 2, send_tokens=1)
        GmPort(net.gm("host2"), 2)
        a.send(net.roles["host2"], 2, 64)
        with pytest.raises(GmPortError):
            a.send(net.roles["host2"], 2, 64)

    def test_wait_send_token_blocks_then_fires(self):
        net = build()
        a = GmPort(net.gm("host1"), 2, send_tokens=1)
        b = GmPort(net.gm("host2"), 2)
        order = []

        def receiver():
            while True:
                pm = yield b.receive()
                order.append(("rx", pm.tag))

        def sender():
            a.send(net.roles["host2"], 2, 64, tag=0)
            yield a.wait_send_token()
            order.append(("token", net.sim.now))
            a.send(net.roles["host2"], 2, 64, tag=1)

        net.sim.process(receiver(), name="rx")
        net.sim.process(sender(), name="tx")
        net.sim.run(until=20_000_000)
        assert ("rx", 0) in order and ("rx", 1) in order
        # The token event fired only after the first completion.
        token_time = [t for kind, t in order if kind == "token"][0]
        assert token_time > 0


class TestReceiveTokens:
    def test_message_waits_for_token(self):
        net = build()
        a = GmPort(net.gm("host1"), 2)
        b = GmPort(net.gm("host2"), 2, recv_tokens=1)
        got = []

        def receiver():
            while True:
                pm = yield b.receive()
                got.append(pm.tag)

        net.sim.process(receiver(), name="rx")
        a.send(net.roles["host2"], 2, 32, tag=0)
        a.send(net.roles["host2"], 2, 32, tag=1)
        net.sim.run(until=20_000_000)
        # One token: only the first message reached the application.
        assert got == [0]
        assert b.buffered == 1
        b.provide_receive_token()
        net.sim.run(until=net.sim.now + 1_000_000)
        assert got == [0, 1]
        assert b.buffered == 0

    def test_provide_validation(self):
        net = build()
        b = GmPort(net.gm("host2"), 2)
        with pytest.raises(GmPortError):
            b.provide_receive_token(0)

    def test_ready_queue_without_waiter(self):
        """Messages matched to tokens park until receive() is called."""
        net = build()
        a = GmPort(net.gm("host1"), 2)
        b = GmPort(net.gm("host2"), 2, recv_tokens=4)
        for i in range(3):
            a.send(net.roles["host2"], 2, 16, tag=i)
        net.sim.run(until=20_000_000)
        tags = []
        for _ in range(3):
            ev = b.receive()
            assert ev.triggered
            tags.append(ev.value.tag)
        assert tags == [0, 1, 2]


class TestPortAddressing:
    def test_messages_routed_to_target_port(self):
        net = build()
        a = GmPort(net.gm("host1"), 2)
        b_low = GmPort(net.gm("host2"), 2)
        b_high = GmPort(net.gm("host2"), 5)
        got = {"low": [], "high": []}

        def rx(port, key):
            while True:
                pm = yield port.receive()
                got[key].append(pm.tag)

        net.sim.process(rx(b_low, "low"), name="rxl")
        net.sim.process(rx(b_high, "high"), name="rxh")
        a.send(net.roles["host2"], 5, 64, tag=0)
        a.send(net.roles["host2"], 2, 64, tag=1)
        a.send(net.roles["host2"], 5, 64, tag=2)
        net.sim.run(until=30_000_000)
        assert got["high"] == [0, 2]
        assert got["low"] == [1]

    def test_unknown_port_dropped_silently(self):
        net = build()
        a = GmPort(net.gm("host1"), 2)
        b = GmPort(net.gm("host2"), 2)
        a.send(net.roles["host2"], 9, 64, tag=0)  # nobody listens on 9
        a.send(net.roles["host2"], 2, 64, tag=1)
        got = []

        def rx():
            while True:
                pm = yield b.receive()
                got.append(pm.tag)

        net.sim.process(rx(), name="rx")
        net.sim.run(until=30_000_000)
        assert got == [1]
