"""Tests for fault injection and GM's recovery from it."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.network.faults import FaultEvent, FaultPlan, install_fault_plan


def build(reliable=True, **kw):
    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network("fig6", config=cfg)


class TestFaultPlan:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(loss_probability=-0.1)

    def test_roll_deterministic_per_seed(self):
        a = FaultPlan(corrupt_probability=0.3, loss_probability=0.2, seed=5)
        b = FaultPlan(corrupt_probability=0.3, loss_probability=0.2, seed=5)
        pids = range(1000, 1050)
        assert [a.roll(p) for p in pids] == [b.roll(p) for p in pids]

    def test_roll_keyed_by_pid_not_call_order(self):
        """A packet's fate depends only on (seed, pid): interleaving an
        unrelated flow's rolls must not shift another packet's outcome."""
        a = FaultPlan(loss_probability=0.5, seed=7)
        b = FaultPlan(loss_probability=0.5, seed=7)
        flow1 = [(1 << 20) | i for i in range(30)]
        flow2 = [(2 << 20) | i for i in range(30)]
        solo = {p: a.roll(p) for p in flow1}
        interleaved = {}
        for p1, p2 in zip(flow1, flow2):
            interleaved[p1] = b.roll(p1)
            b.roll(p2)  # unrelated flow draws in between
        assert solo == interleaved

    def test_zero_probability_never_faults(self):
        plan = FaultPlan()
        assert all(plan.roll(pid) == "ok" for pid in range(100))
        assert plan.corrupted == 0 and plan.lost == 0

    def test_counters(self):
        plan = FaultPlan(corrupt_probability=0.5, loss_probability=0.5)
        for pid in range(40):
            plan.roll(pid)
        assert plan.corrupted + plan.lost == 40

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor-strike", target=0, at_ns=1.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="link-down", target=0, at_ns=-1.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="link-down", target=0, at_ns=1.0, repair_ns=0.0)


class TestInjection:
    def test_corruption_dropped_and_recovered(self):
        """Every corrupted packet is retransmitted until delivered."""
        net = build(reliable=True)
        plan = FaultPlan(corrupt_probability=0.4, seed=3)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(receiver(), name="rx")
        n = 8
        for i in range(n):
            a.send(b.host, 256, tag=i)
        net.sim.run(until=100_000_000)
        assert sorted(got) == list(range(n))
        assert plan.corrupted > 0
        assert a.retransmissions >= plan.corrupted

    def test_loss_recovered(self):
        net = build(reliable=True)
        plan = FaultPlan(loss_probability=0.3, seed=11)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(receiver(), name="rx")
        for i in range(6):
            a.send(b.host, 512, tag=i)
        net.sim.run(until=100_000_000)
        assert sorted(got) == list(range(6))
        assert plan.lost > 0

    def test_unreliable_traffic_just_loses(self):
        """Without the reliability layer, faults mean silent loss."""
        net = build(reliable=False)
        plan = FaultPlan(loss_probability=1.0, seed=1)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        a.send(b.host, 128)
        net.sim.run(until=10_000_000)
        assert b.messages_received == 0
        assert plan.lost == 1

    def test_acks_not_subject_to_faults(self):
        """Control packets (acks/nacks/resets) pass unharmed so the
        protocol can converge — or fail gracefully, never wedge."""
        net = build(reliable=True)
        # Corrupt every eligible data packet; acks must still flow.
        plan = FaultPlan(corrupt_probability=1.0, seed=2)
        install_fault_plan(net, plan)
        a = net.gm("host1")
        a.max_retries = 2
        a.resend_timeout_ns = 100_000.0
        from repro.gm.host import GmSendError

        done = a.send(net.roles["host2"], 64)
        failures = []

        def waiter():
            try:
                yield done
            except GmSendError as exc:
                failures.append(exc)

        net.sim.process(waiter())
        net.sim.run(until=100_000_000)
        # Data never converges (always corrupted) so the budget fails
        # the send gracefully; the corrupted retries prove the data
        # packets kept being rolled while control traffic was not.
        assert len(failures) == 1
        assert plan.corrupted >= 3  # original + retries all corrupted
        assert a.send_errors == 1
