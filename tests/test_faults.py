"""Tests for fault injection and GM's recovery from it."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.network.faults import FaultPlan, install_fault_plan


def build(reliable=True, **kw):
    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    return build_network("fig6", config=cfg)


class TestFaultPlan:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(loss_probability=-0.1)

    def test_roll_deterministic_per_seed(self):
        a = FaultPlan(corrupt_probability=0.3, loss_probability=0.2, seed=5)
        b = FaultPlan(corrupt_probability=0.3, loss_probability=0.2, seed=5)
        assert [a.roll() for _ in range(50)] == [b.roll() for _ in range(50)]

    def test_zero_probability_never_faults(self):
        plan = FaultPlan()
        assert all(plan.roll() == "ok" for _ in range(100))
        assert plan.corrupted == 0 and plan.lost == 0

    def test_counters(self):
        plan = FaultPlan(corrupt_probability=0.5, loss_probability=0.5)
        for _ in range(40):
            plan.roll()
        assert plan.corrupted + plan.lost == 40


class TestInjection:
    def test_corruption_dropped_and_recovered(self):
        """Every corrupted packet is retransmitted until delivered."""
        net = build(reliable=True)
        plan = FaultPlan(corrupt_probability=0.4, seed=3)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(receiver(), name="rx")
        n = 8
        for i in range(n):
            a.send(b.host, 256, tag=i)
        net.sim.run(until=100_000_000)
        assert sorted(got) == list(range(n))
        assert plan.corrupted > 0
        assert a.retransmissions >= plan.corrupted

    def test_loss_recovered(self):
        net = build(reliable=True)
        plan = FaultPlan(loss_probability=0.3, seed=11)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def receiver():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(receiver(), name="rx")
        for i in range(6):
            a.send(b.host, 512, tag=i)
        net.sim.run(until=100_000_000)
        assert sorted(got) == list(range(6))
        assert plan.lost > 0

    def test_unreliable_traffic_just_loses(self):
        """Without the reliability layer, faults mean silent loss."""
        net = build(reliable=False)
        plan = FaultPlan(loss_probability=1.0, seed=1)
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        a.send(b.host, 128)
        net.sim.run(until=10_000_000)
        assert b.messages_received == 0
        assert plan.lost == 1

    def test_acks_not_subject_to_faults(self):
        """Control packets (zero-ish payload acks) pass unharmed so
        recovery converges."""
        net = build(reliable=True)
        # Corrupt everything eligible; acks must still get through.
        plan = FaultPlan(corrupt_probability=1.0, seed=2)
        # Only wrap host1 -> host2 direction by restricting eligibility:
        # install globally, then verify convergence is impossible for
        # data (always corrupted) but the system keeps retrying, which
        # proves acks (from host2's earlier deliveries) aren't faulted.
        install_fault_plan(net, plan)
        a = net.gm("host1")
        a.max_retries = 2
        a.resend_timeout_ns = 100_000.0
        a.send(net.roles["host2"], 64)
        from repro.gm.host import GmSendError
        from repro.sim.engine import SimulationError

        with pytest.raises((GmSendError, SimulationError)):
            net.sim.run(until=100_000_000)
        assert plan.corrupted >= 3  # original + retries all corrupted
