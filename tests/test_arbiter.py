"""Tests for the LANai memory-arbitration model."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.nic.arbiter import MemoryArbiter


class TestModel:
    def test_idle_processor_runs_full_speed(self):
        arb = MemoryArbiter(enabled=True)
        assert arb.cpu_scale() == pytest.approx(1.0)
        assert arb.scaled(100.0) == pytest.approx(100.0)

    def test_one_dma_halves_cpu_bandwidth(self):
        arb = MemoryArbiter(enabled=True)
        arb.engine_start("recv_dma")
        # budget 2.0, recv takes 1.0 -> CPU gets 1.0 of its 2.0 demand.
        assert arb.cpu_scale() == pytest.approx(2.0)

    def test_two_dmas_hit_the_floor(self):
        arb = MemoryArbiter(enabled=True)
        arb.engine_start("recv_dma")
        arb.engine_start("send_dma")
        # Nothing left by priority, but the burst-gap floor applies.
        assert arb.cpu_scale() == pytest.approx(4.0)

    def test_three_dmas_same_floor(self):
        arb = MemoryArbiter(enabled=True)
        for e in ("host_dma", "recv_dma", "send_dma"):
            arb.engine_start(e)
        assert arb.cpu_scale() == pytest.approx(4.0)

    def test_stop_restores_speed(self):
        arb = MemoryArbiter(enabled=True)
        arb.engine_start("host_dma")
        arb.engine_stop("host_dma")
        assert arb.cpu_scale() == pytest.approx(1.0)

    def test_disabled_always_unity(self):
        arb = MemoryArbiter(enabled=False)
        arb.engine_start("recv_dma")
        arb.engine_start("send_dma")
        assert arb.cpu_scale() == 1.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            MemoryArbiter().engine_start("quantum_dma")

    def test_unbalanced_stop_rejected(self):
        with pytest.raises(ValueError):
            MemoryArbiter().engine_stop("send_dma")

    def test_nested_activity_counts(self):
        arb = MemoryArbiter(enabled=True)
        arb.engine_start("recv_dma")
        arb.engine_start("recv_dma")  # two packets streaming in
        arb.engine_stop("recv_dma")
        # Still one active: contention persists.
        assert arb.cpu_scale() == pytest.approx(2.0)


class TestWiredIn:
    def _net(self, contention: bool):
        cfg = NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
            model_memory_contention=contention,
        )
        return build_network("fig6", config=cfg)

    def test_balanced_after_traffic(self):
        """Every engine_start is matched: the arbiter returns to idle."""
        net = self._net(True)
        net.ping_pong("host1", "host2", size=2048, iterations=3)
        for nic in net.nics.values():
            assert nic.arbiter.host_dma_active == 0
            assert nic.arbiter.recv_dma_active == 0
            assert nic.arbiter.send_dma_active == 0

    def test_unloaded_ping_pong_unaffected(self):
        """On an unloaded ping-pong the MCP code never overlaps a DMA
        burst (SDMA finishes before the Send machine runs; the Recv
        machine runs after the wire drains), so modeling contention
        changes nothing — the model only bites where engines overlap."""
        lat = {}
        for contention in (False, True):
            net = self._net(contention)
            res = net.ping_pong("host1", "host2", size=1024, iterations=3)
            lat[contention] = res.mean_ns
        assert lat[True] == pytest.approx(lat[False], abs=1e-6)

    def test_contention_increases_itb_overhead(self):
        """The ITB forward code runs while the in-transit packet is
        still streaming in (recv DMA active), so modeling contention
        inflates the per-ITB cost — the EXP-A4 ablation."""
        from repro.harness.paths import fig6_paths

        ovh = {}
        for contention in (False, True):
            nets = [self._net(contention), self._net(contention)]
            paths = fig6_paths(nets[0].topo, nets[0].roles)
            ud = nets[0].ping_pong("host1", "host2", size=256, iterations=5,
                                   route_ab=paths.ud5, route_ba=paths.rev2)
            itb = nets[1].ping_pong("host1", "host2", size=256, iterations=5,
                                    route_ab=paths.itb5, route_ba=paths.rev2)
            ovh[contention] = 2.0 * (itb.mean_ns - ud.mean_ns)
        assert ovh[True] > ovh[False]

    def test_disabled_is_default(self):
        net = build_network("fig6")
        assert not net.nic("host1").arbiter.enabled
