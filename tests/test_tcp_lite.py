"""Tests for the TCP-lite transport over IP-over-GM."""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.gm.tcp_lite import MSS, TcpLiteEndpoint


def build():
    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=False,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    return build_network("fig6", config=cfg)


def pair(net):
    a = TcpLiteEndpoint(net.gm("host1"))
    b = TcpLiteEndpoint(net.gm("host2"))
    got = []
    b.on_stream_data(lambda peer, n: got.append((peer, n)))
    return a, b, got


class TestHandshake:
    def test_three_way_handshake(self):
        net = build()
        a, b, _got = pair(net)
        established = a.connect(net.roles["host2"])
        net.sim.run_until_event(established)
        net.sim.run(until=net.sim.now + 1_000_000)
        assert a.stats.handshakes == 1
        assert b.stats.handshakes == 1
        # SYN, SYN-ACK, ACK = 3 control segments total.
        assert a.stats.segments_sent + b.stats.segments_sent == 3

    def test_connect_when_established_is_immediate(self):
        net = build()
        a, _b, _got = pair(net)
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        again = a.connect(net.roles["host2"])
        assert again.triggered

    def test_send_before_connect_rejected(self):
        net = build()
        a, _b, _got = pair(net)
        with pytest.raises(RuntimeError):
            a.send_stream(net.roles["host2"], 100)


class TestStreaming:
    def _stream(self, size, window=None):
        net = build()
        a, b, got = pair(net)
        if window is not None:
            a.window_bytes = window
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        done = a.send_stream(net.roles["host2"], size)
        net.sim.run_until_event(done)
        net.sim.run(until=net.sim.now + 1_000_000)
        return a, b, got

    def test_small_stream_delivered(self):
        _a, b, got = self._stream(1000)
        assert sum(n for _p, n in got) == 1000
        assert b.stats.bytes_delivered == 1000

    def test_multi_segment_stream(self):
        size = 3 * MSS + 500
        a, b, got = self._stream(size)
        assert b.stats.bytes_delivered == size
        assert a.stats.retransmissions == 0

    def test_window_limits_inflight(self):
        """A one-MSS window serializes segments: the stream still
        completes, strictly rtt-paced."""
        size = 4 * MSS
        a, b, got = self._stream(size, window=MSS)
        assert b.stats.bytes_delivered == size

    def test_fin_teardown(self):
        net = build()
        a, b, _got = pair(net)
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        a.close(net.roles["host2"])
        net.sim.run(until=net.sim.now + 1_000_000)
        assert not b._connections[a.host].established


class TestLossRecovery:
    def test_lost_segment_retransmitted(self):
        from repro.network.faults import FaultPlan, install_fault_plan

        net = build()
        a, b, got = pair(net)
        a.rto_ns = 200_000.0
        net.sim.run_until_event(a.connect(net.roles["host2"]))
        # Let the final handshake ACK drain so the injected loss hits
        # the first DATA segment, not the in-flight ack-of-syn.
        net.sim.run(until=net.sim.now + 1_000_000)
        plan = FaultPlan(loss_probability=0.0, seed=1)
        count = {"n": 0}

        def lose_first_data(_pid):
            count["n"] += 1
            return "lost" if count["n"] == 1 else "ok"

        plan.roll = lose_first_data  # type: ignore[method-assign]
        install_fault_plan(net, plan)
        size = 2 * MSS
        done = a.send_stream(net.roles["host2"], size)
        net.sim.run_until_event(done)
        assert b.stats.bytes_delivered == size
        assert a.stats.retransmissions >= 1
        # In-order delivery preserved despite the out-of-order arrival.
        assert sum(n for _p, n in got) == size

    def test_gm_native_beats_tcp_lite_latency(self):
        """The layering cost the paper's efficiency framing implies:
        the same bytes arrive later over TCP-lite/IP/GM than over GM's
        native path (handshake + per-segment 40-byte headers + acks)."""
        size = 2000
        # TCP-lite timing.
        net1 = build()
        a, b, _got = pair(net1)
        net1.sim.run_until_event(a.connect(net1.roles["host2"]))
        t0 = net1.sim.now
        net1.sim.run_until_event(a.send_stream(net1.roles["host2"], size))
        tcp_time = net1.sim.now - t0
        # GM native (unreliable here; reliable adds one ack).
        net2 = build()
        done = net2.sim.event("gm")
        net2.nics[net2.roles["host1"]].firmware.host_send(
            dst=net2.roles["host2"], payload_len=size, gm={"last": True},
            on_delivered=lambda tp: done.succeed())
        t0 = net2.sim.now
        net2.sim.run_until_event(done)
        gm_time = net2.sim.now - t0
        assert tcp_time > gm_time
