"""Burst-advancement Stop&Go model vs the per-byte reference oracle.

``repro.network.flow_control`` replays byte dynamics on a private
micro-calendar and skips repeating cycles in closed form.  The retired
generator implementation — two processes waking every byte time on the
real calendar — is preserved here verbatim as the oracle, and every
scenario checks that the new model emits *bit-identical*
:class:`StopGoStats` (counters, ``max_slack_occupancy``, and float
stall durations), both mid-run and at completion.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Optional

import pytest

from repro.network.flow_control import StopGoChannel, StopGoStats
from repro.sim.engine import Event, Simulator, Timeout


class _ReferenceStopGoChannel:
    """The original per-byte generator model (oracle, kept verbatim)."""

    def __init__(self, sim, prop_ns, byte_ns, slack_bytes=None,
                 stop_threshold=None, go_threshold=None):
        from repro.network.flow_control import required_slack_bytes
        self.sim = sim
        self.prop_ns = prop_ns
        self.byte_ns = byte_ns
        self.slack_bytes = slack_bytes if slack_bytes is not None else \
            required_slack_bytes(prop_ns, byte_ns)
        self.stop_threshold = (stop_threshold if stop_threshold is not None
                               else max(1, self.slack_bytes // 2))
        self.go_threshold = (go_threshold if go_threshold is not None
                             else max(0, self.stop_threshold // 2))
        if not (0 <= self.go_threshold < self.stop_threshold
                <= self.slack_bytes):
            raise ValueError("need 0 <= go < stop <= slack")
        self.stats = StopGoStats()
        self._occupancy = 0
        self._sender_stopped = False
        self._receiver_blocked = False
        self._done: Optional[Event] = None

    def block_receiver(self):
        self._receiver_blocked = True

    def unblock_receiver(self):
        self._receiver_blocked = False

    @property
    def slack_occupancy(self):
        return self._occupancy

    def transfer(self, n_bytes):
        if self._done is not None:
            raise RuntimeError("one transfer at a time on this channel")
        self._done = Event(self.sim, name="stopgo-done")
        self.sim.process(self._sender(n_bytes), name="stopgo-send")
        self.sim.process(self._receiver(n_bytes), name="stopgo-recv")
        return self._done

    def _sender(self, n_bytes):
        stall_started: Optional[float] = None
        while self.stats.bytes_sent < n_bytes:
            if self._sender_stopped:
                if stall_started is None:
                    stall_started = self.sim.now
                yield Timeout(self.byte_ns)
                continue
            if stall_started is not None:
                self.stats.sender_stalled_ns += self.sim.now - stall_started
                stall_started = None
            yield Timeout(self.byte_ns)
            self.stats.bytes_sent += 1
            self.sim.schedule(self.prop_ns, self._byte_arrives)

    def _byte_arrives(self):
        self._occupancy += 1
        self.stats.max_slack_occupancy = max(
            self.stats.max_slack_occupancy, self._occupancy)
        if self._occupancy > self.slack_bytes:
            raise RuntimeError(
                "slack overrun: Stop&Go failed to protect the buffer"
                f" (occupancy {self._occupancy} > {self.slack_bytes})"
            )
        if self._occupancy >= self.stop_threshold and not self._sender_stopped:
            self.stats.stops_sent += 1
            self.sim.schedule(self.prop_ns, self._set_stop)

    def _set_stop(self):
        self._sender_stopped = True

    def _set_go(self):
        self._sender_stopped = False

    def _receiver(self, n_bytes):
        while self.stats.bytes_delivered < n_bytes:
            if self._receiver_blocked or self._occupancy == 0:
                yield Timeout(self.byte_ns)
                continue
            yield Timeout(self.byte_ns)
            if self._receiver_blocked or self._occupancy == 0:
                continue
            self._occupancy -= 1
            self.stats.bytes_delivered += 1
            if (self._sender_stopped
                    and self._occupancy <= self.go_threshold):
                self.stats.gos_sent += 1
                self.sim.schedule(self.prop_ns, self._set_go)
        done, self._done = self._done, None
        if done is not None and not done.triggered:
            done.succeed(self.stats)


def _run_scenario(channel_cls, *, prop_ns, byte_ns, n_bytes, blocks=(),
                  probes=(), channel_kw=None):
    """Run one transfer; return (completion time, final stats tuple,
    probe samples).  ``blocks`` is a list of (time, "block"|"unblock");
    ``probes`` is a list of off-lattice times at which (stats,
    occupancy) are sampled, exactly as a test callback would."""
    sim = Simulator()
    ch = channel_cls(sim, prop_ns=prop_ns, byte_ns=byte_ns,
                     **(channel_kw or {}))
    for when, action in blocks:
        fn = ch.block_receiver if action == "block" else ch.unblock_receiver
        sim.schedule(when, fn)
    samples = []
    for when in probes:
        sim.schedule(
            when,
            lambda w=when: samples.append(
                (w, astuple(ch.stats), ch.slack_occupancy)),
        )
    done = ch.transfer(n_bytes)
    value = sim.run_until_event(done)
    # Late control callbacks may still sit on the calendar; the oracle
    # leaves them there too, so stop at the completion instant.
    return sim.now, astuple(value), samples


SCENARIOS = [
    # (prop_ns, byte_ns, n_bytes, blocks, channel_kw)
    pytest.param(13.0, 6.25, 300, (), None, id="free-flow"),
    pytest.param(13.0, 6.25, 0, (), None, id="zero-bytes"),
    pytest.param(13.0, 6.25, 1, (), None, id="one-byte"),
    pytest.param(13.0, 6.25, 300, ((200.0, "block"), (5_000.0, "unblock")),
                 None, id="block-unblock"),
    pytest.param(13.0, 6.25, 250, ((150.0, "block"), (3_000.0, "unblock"),
                                   (4_000.0, "block"), (6_500.0, "unblock")),
                 None, id="double-stall"),
    pytest.param(12.5, 6.25, 200, ((100.0, "block"), (2_000.0, "unblock")),
                 None, id="prop-on-grid"),
    pytest.param(6.25, 6.25, 120, ((100.0, "block"), (1_500.0, "unblock")),
                 None, id="prop-equals-byte"),
    pytest.param(1.0, 8.0, 150, ((96.0, "block"), (1_000.0, "unblock")),
                 None, id="short-cable"),
    # Long cable: the default sizing rule cannot absorb a mid-stream
    # block (stop threshold + round-trip flight exceeds the slack), so
    # size the buffer explicitly.
    pytest.param(40.0, 2.0, 400, ((100.0, "block"), (2_000.0, "unblock")),
                 {"slack_bytes": 100, "stop_threshold": 30,
                  "go_threshold": 10}, id="long-cable"),
    pytest.param(13.0, 6.25, 200, ((120.0, "block"), (2_400.0, "unblock")),
                 {"slack_bytes": 20, "stop_threshold": 1, "go_threshold": 0},
                 id="stop-go-oscillation"),
    pytest.param(0.3, 0.1, 150, ((7.0, "block"), (60.0, "unblock")),
                 None, id="non-dyadic-times"),
]


class TestOracleEquivalence:
    @pytest.mark.parametrize("prop_ns,byte_ns,n_bytes,blocks,channel_kw",
                             SCENARIOS)
    def test_stats_bit_identical(self, prop_ns, byte_ns, n_bytes, blocks,
                                 channel_kw):
        probes = tuple(37.1 + 211.7 * k for k in range(12))
        new = _run_scenario(StopGoChannel, prop_ns=prop_ns, byte_ns=byte_ns,
                            n_bytes=n_bytes, blocks=blocks, probes=probes,
                            channel_kw=channel_kw)
        ref = _run_scenario(_ReferenceStopGoChannel, prop_ns=prop_ns,
                            byte_ns=byte_ns, n_bytes=n_bytes, blocks=blocks,
                            probes=probes, channel_kw=channel_kw)
        assert new[1] == ref[1], "final stats diverged"
        assert new[2] == ref[2], "mid-run samples diverged"
        assert new[0] == ref[0], "completion time diverged"

    def test_blocked_forever_matches_oracle(self):
        """Stats sampled while the channel is permanently stalled match,
        even though the new model has nothing left on the calendar."""
        results = []
        for cls in (StopGoChannel, _ReferenceStopGoChannel):
            sim = Simulator()
            ch = cls(sim, prop_ns=13.0, byte_ns=6.25)
            ch.block_receiver()
            ch.transfer(500)
            # Off-lattice horizon: both models have processed exactly
            # the events before it.
            sim.run(until=20_001.3)
            results.append((astuple(ch.stats), ch.slack_occupancy))
        assert results[0] == results[1]

    def test_overrun_raises_like_oracle(self):
        """A mis-sized slack still fails loudly, at the same instant."""
        kw = dict(prop_ns=40.0, byte_ns=2.0, slack_bytes=10,
                  stop_threshold=8, go_threshold=2)
        times = []
        for cls in (StopGoChannel, _ReferenceStopGoChannel):
            sim = Simulator()
            ch = cls(sim, **kw)
            ch.block_receiver()  # occupancy climbs unchecked past the STOP
            done = ch.transfer(100)
            with pytest.raises((RuntimeError, Exception)) as exc:
                sim.run_until_event(done)
            assert "slack overrun" in str(exc.value)
            times.append(sim.now)
        assert times[0] == times[1]


class TestIdleSchedulesNothing:
    def test_no_transfer_no_calendar_entries(self):
        sim = Simulator()
        ch = StopGoChannel(sim, prop_ns=13.0, byte_ns=6.25)
        ch.block_receiver()
        ch.unblock_receiver()
        assert sim.pending == 0
        assert ch.stats.bytes_sent == 0

    def test_stalled_transfer_goes_quiet(self):
        """Once permanently blocked, the channel keeps zero calendar
        entries — the old model polled twice per byte time forever."""
        sim = Simulator()
        ch = StopGoChannel(sim, prop_ns=13.0, byte_ns=6.25)
        ch.block_receiver()
        ch.transfer(500)
        sim.run(until=20_001.3)
        assert ch.stats.bytes_sent <= ch.slack_bytes + 4
        assert sim.pending == 0

    def test_active_transfer_is_one_callback(self):
        sim = Simulator()
        ch = StopGoChannel(sim, prop_ns=13.0, byte_ns=6.25)
        done = ch.transfer(400)
        assert sim.pending == 1  # just the projected completion
        stats = sim.run_until_event(done)
        assert stats.bytes_delivered == 400
