"""EXP-A5: spanning-tree root placement sensitivity.

up*/down* quality depends on where the BFS root lands — a poorly
placed root (a leaf-ish switch) lengthens valid paths and worsens the
concentration.  ITB routing keeps minimal paths regardless of the
root, so its advantage *grows* under a bad root.  This pins the
robustness argument quantitatively.
"""

from __future__ import annotations

import itertools

import pytest

from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.spanning_tree import build_orientation, choose_root
from repro.routing.updown import UpDownRouter
from repro.topology.generators import linear_switches, random_irregular


def _avg_hops(router_route, hosts):
    total = 0
    n = 0
    for s, d in itertools.permutations(hosts, 2):
        route = router_route(s, d)
        hops = route.switch_hops() if hasattr(route, "switch_hops") else []
        total += len(hops)
        n += 1
    return total / n


def _worst_root(topo):
    """The root maximizing BFS eccentricity — the anti-optimal choice."""
    from repro.routing.minimal import switch_distances

    def ecc(s):
        return max(switch_distances(topo, s).values())

    return max(topo.switches(), key=lambda s: (ecc(s), s))


class TestRootPlacement:
    @pytest.fixture(scope="class")
    def topo(self):
        return random_irregular(12, seed=21, hosts_per_switch=1)

    def test_bad_root_lengthens_updown_paths(self, topo):
        hosts = topo.hosts()
        good = build_orientation(topo, root=choose_root(topo))
        bad = build_orientation(topo, root=_worst_root(topo))
        ud_good = UpDownRouter(topo, good)
        ud_bad = UpDownRouter(topo, bad)
        assert _avg_hops(ud_bad.route, hosts) >= \
            _avg_hops(ud_good.route, hosts)

    def test_itb_immune_to_root_choice(self, topo):
        """ITB fabric-hop counts are root-independent whenever every
        violation switch carries a host (every switch does here)."""
        hosts = topo.hosts()
        good = build_orientation(topo, root=choose_root(topo))
        bad = build_orientation(topo, root=_worst_root(topo))
        itb_good = ItbRouter(topo, good)
        itb_bad = ItbRouter(topo, bad)
        mn = MinimalRouter(topo)
        minimal = _avg_hops(mn.route, hosts)
        assert _avg_hops(itb_good.itb_route, hosts) == pytest.approx(minimal)
        assert _avg_hops(itb_bad.itb_route, hosts) == pytest.approx(minimal)

    def test_advantage_grows_under_bad_root(self, topo):
        """The ITB-vs-UD hop saving is at least as large under the
        anti-optimal root as under the optimal one."""
        hosts = topo.hosts()
        savings = {}
        for label, root in (("good", choose_root(topo)),
                            ("bad", _worst_root(topo))):
            orientation = build_orientation(topo, root=root)
            ud = UpDownRouter(topo, orientation)
            itb = ItbRouter(topo, orientation)
            savings[label] = (_avg_hops(ud.route, hosts)
                              - _avg_hops(itb.itb_route, hosts))
        assert savings["bad"] >= savings["good"] - 1e-9

    def test_chain_extreme(self):
        """On a chain rooted at one end, up*/down* still routes every
        pair minimally (a path graph has unique paths) — the pathology
        needs cycles, which the irregular fixture provides."""
        topo = linear_switches(6, hosts_per_switch=1)
        end_root = topo.switches()[0]
        orientation = build_orientation(topo, root=end_root)
        ud = UpDownRouter(topo, orientation)
        mn = MinimalRouter(topo)
        hosts = topo.hosts()
        assert _avg_hops(ud.route, hosts) == pytest.approx(
            _avg_hops(mn.route, hosts))
