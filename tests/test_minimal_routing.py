"""Tests for the minimal (unrestricted shortest-path) router."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro.routing.minimal import (
    MinimalRouter,
    all_shortest_switch_paths,
    switch_distances,
)
from repro.routing.routes import RouteError
from repro.topology.generators import fig1_topology, mesh_2d, random_irregular


@pytest.fixture
def fig1():
    return fig1_topology()


class TestSwitchDistances:
    def test_matches_networkx(self, fig1):
        topo, _ = fig1
        g = nx.Graph()
        for s in topo.switches():
            for (_p, n, _l) in topo.switch_neighbors(s):
                g.add_edge(s, n)
        for src in topo.switches():
            ours = switch_distances(topo, src)
            theirs = nx.single_source_shortest_path_length(g, src)
            assert ours == dict(theirs)


class TestAllShortestPaths:
    def test_enumerates_all(self, fig1):
        topo, roles = fig1
        paths = list(all_shortest_switch_paths(topo, roles["sw4"], roles["sw1"]))
        assert [roles["sw4"], roles["sw6"], roles["sw1"]] in paths
        lengths = {len(p) for p in paths}
        assert lengths == {3}

    def test_lexicographic_order(self):
        topo = mesh_2d(2, 2)
        s = topo.switches()
        # Two shortest paths between opposite corners of a 2x2 mesh.
        paths = list(all_shortest_switch_paths(topo, s[0], s[3]))
        assert len(paths) == 2
        assert paths == sorted(paths)

    def test_limit_respected(self):
        topo = mesh_2d(3, 3)
        s = topo.switches()
        paths = list(all_shortest_switch_paths(topo, s[0], s[8], limit=2))
        assert len(paths) == 2

    def test_identity_path(self, fig1):
        topo, roles = fig1
        assert list(all_shortest_switch_paths(topo, roles["sw2"], roles["sw2"])) \
            == [[roles["sw2"]]]

    def test_host_endpoint_rejected(self, fig1):
        topo, roles = fig1
        with pytest.raises(RouteError):
            list(all_shortest_switch_paths(topo, roles["host_on_sw0"],
                                           roles["sw1"]))


class TestMinimalRouter:
    def test_takes_the_shortcut(self, fig1):
        topo, roles = fig1
        router = MinimalRouter(topo)
        r = router.route(roles["host_on_sw4"], roles["host_on_sw1"])
        assert list(r.switch_path) == [roles["sw4"], roles["sw6"], roles["sw1"]]
        assert topo.walk_route(r.src, list(r.ports)) == r.dst

    def test_distance(self, fig1):
        topo, roles = fig1
        router = MinimalRouter(topo)
        assert router.distance(roles["host_on_sw4"], roles["host_on_sw1"]) == 3
        assert router.distance(roles["host_on_sw0"], roles["host_on_sw1"]) == 2

    def test_lengths_never_exceed_updown(self):
        from repro.routing.updown import UpDownRouter

        topo = random_irregular(12, seed=42)
        mn = MinimalRouter(topo)
        ud = UpDownRouter(topo)
        for s, d in itertools.permutations(topo.hosts(), 2):
            assert mn.route(s, d).n_switches <= ud.route(s, d).n_switches

    def test_same_host_rejected(self, fig1):
        topo, roles = fig1
        with pytest.raises(RouteError):
            MinimalRouter(topo).route(roles["host_on_sw0"],
                                      roles["host_on_sw0"])
