"""Tests for channel-dependency-graph deadlock analysis."""

from __future__ import annotations


from repro.routing.cdg import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
    lanes_required,
)
from repro.routing.itb import ItbRouter
from repro.routing.minimal import MinimalRouter
from repro.routing.routes import ItbRoute, SourceRoute
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.graph import PortKind, Topology


def ring_topology(n: int = 4):
    """A ring of switches — the canonical deadlock-prone fabric."""
    topo = Topology(name=f"ring-{n}")
    sw = [topo.add_switch(n_ports=8) for _ in range(n)]
    for i in range(n):
        a, b = sw[i], sw[(i + 1) % n]
        topo.connect(a, topo.free_port(a), b, topo.free_port(b),
                     kind=PortKind.SAN)
    hosts = [topo.attach_host(s, topo.free_port(s)) for s in sw]
    topo.validate()
    return topo, sw, hosts


def cyclic_routes(topo, sw, hosts):
    """Hand-built routes that all turn the same way around the ring,
    creating the textbook cyclic channel dependency."""
    n = len(sw)
    routes = []
    for i in range(n):
        j = (i + 2) % n  # two hops clockwise
        path = [sw[i], sw[(i + 1) % n], sw[j]]
        ports = [topo.port_toward(a, b) for a, b in zip(path, path[1:])]
        ports.append(topo.port_toward(sw[j], hosts[j]))
        routes.append(SourceRoute(src=hosts[i], dst=hosts[j],
                                  ports=tuple(ports),
                                  switch_path=tuple(path)))
    return routes


class TestCycleDetection:
    def test_ring_clockwise_routes_cycle(self):
        topo, sw, hosts = ring_topology(4)
        routes = cyclic_routes(topo, sw, hosts)
        cycle = find_dependency_cycle(topo, routes)
        assert cycle is not None
        assert not is_deadlock_free(topo, routes)

    def test_itb_split_breaks_the_cycle(self):
        """Eject-and-reinject at every second switch: the identical
        switch walk becomes deadlock-free — the paper's core argument."""
        topo, sw, hosts = ring_topology(4)
        n = len(sw)
        split_routes = []
        for i in range(n):
            mid = (i + 1) % n
            j = (i + 2) % n
            seg1 = SourceRoute(
                src=hosts[i], dst=hosts[mid],
                ports=(topo.port_toward(sw[i], sw[mid]),
                       topo.port_toward(sw[mid], hosts[mid])),
                switch_path=(sw[i], sw[mid]),
            )
            seg2 = SourceRoute(
                src=hosts[mid], dst=hosts[j],
                ports=(topo.port_toward(sw[mid], sw[j]),
                       topo.port_toward(sw[j], hosts[j])),
                switch_path=(sw[mid], sw[j]),
            )
            split_routes.append(ItbRoute((seg1, seg2)))
        assert is_deadlock_free(topo, split_routes)

    def test_updown_on_ring_acyclic(self):
        topo, sw, hosts = ring_topology(6)
        router = UpDownRouter(topo)
        assert is_deadlock_free(topo, router.all_pairs().values())

    def test_minimal_on_ring_cyclic(self):
        topo, sw, hosts = ring_topology(6)
        router = MinimalRouter(topo)
        routes = [router.route(s, d) for s in hosts for d in hosts if s != d]
        assert not is_deadlock_free(topo, routes)

    def test_itb_router_on_ring_acyclic(self):
        topo, sw, hosts = ring_topology(6)
        router = ItbRouter(topo, build_orientation(topo))
        assert is_deadlock_free(topo, router.all_pairs().values())


class TestEscapeLanes:
    """The ISSUE-7 acceptance property: on a topology where minimal
    routing deadlocks without lanes, the escape-lane policy restores a
    provable deadlock-freedom guarantee."""

    def test_escape_lanes_fix_the_ring_cycle(self):
        topo, sw, hosts = ring_topology(4)
        routes = cyclic_routes(topo, sw, hosts)
        # Without lanes: the textbook cycle.
        assert not is_deadlock_free(topo, routes)
        # Sized by the dateline walk, the laned CDG is acyclic.
        need = lanes_required(topo, routes)
        assert need == 2
        assert is_deadlock_free(topo, routes, n_lanes=need,
                                lane_policy="escape")

    def test_escape_lanes_fix_minimal_all_pairs(self):
        """Full minimal all-pairs on a bigger ring: cyclic unlaned,
        acyclic under escape lanes sized by ``lanes_required``."""
        topo, sw, hosts = ring_topology(6)
        router = MinimalRouter(topo)
        routes = [router.route(s, d) for s in hosts for d in hosts if s != d]
        assert not is_deadlock_free(topo, routes)
        need = lanes_required(topo, routes)
        assert is_deadlock_free(topo, routes, n_lanes=need,
                                lane_policy="escape")

    def test_laned_graph_nodes_carry_lane_index(self):
        topo, sw, hosts = ring_topology(4)
        routes = cyclic_routes(topo, sw, hosts)
        g = channel_dependency_graph(topo, routes, n_lanes=2,
                                     lane_policy="escape")
        assert all(len(node) == 3 for node in g.nodes)
        assert {node[2] for node in g.nodes} == {0, 1}

    def test_static_policies_verify_on_collapsed_graph(self):
        """Fixed/round-robin assignments inherit the channel-level
        verdict (the projection argument): cyclic routes stay cyclic,
        acyclic ones stay acyclic, regardless of lane count."""
        topo, sw, hosts = ring_topology(4)
        routes = cyclic_routes(topo, sw, hosts)
        for policy in ("fixed", "roundrobin"):
            assert not is_deadlock_free(topo, routes, n_lanes=3,
                                        lane_policy=policy)
        ud = UpDownRouter(topo)
        for policy in ("fixed", "roundrobin"):
            assert is_deadlock_free(topo, ud.all_pairs().values(),
                                    n_lanes=3, lane_policy=policy)

    def test_escape_below_requirement_not_trusted(self):
        """A clamped walk leaves the dateline scheme; the analysis
        checks the clamped assignment honestly (here: one lane under
        the escape name is just the collapsed cyclic graph)."""
        topo, sw, hosts = ring_topology(4)
        routes = cyclic_routes(topo, sw, hosts)
        assert not is_deadlock_free(topo, routes, n_lanes=1,
                                    lane_policy="escape")


class TestGraphStructure:
    def test_nodes_are_directed_channels(self):
        topo, sw, hosts = ring_topology(3)
        router = UpDownRouter(topo)
        route = router.route(hosts[0], hosts[1])
        g = channel_dependency_graph(topo, [route])
        # injection channel + fabric hops + delivery channel
        assert g.number_of_nodes() == route.n_links
        assert g.number_of_edges() == route.n_links - 1

    def test_opposite_directions_are_distinct_channels(self):
        topo, sw, hosts = ring_topology(3)
        router = UpDownRouter(topo)
        g = channel_dependency_graph(
            topo,
            [router.route(hosts[0], hosts[1]),
             router.route(hosts[1], hosts[0])],
        )
        # The forward and reverse routes share the physical cable but
        # not channels: no node appears in both chains.
        link = topo.links_between(sw[0], sw[1])[0]
        assert (link.link_id, 0) in g.nodes or (link.link_id, 1) in g.nodes
