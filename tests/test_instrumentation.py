"""Tests for channel-usage instrumentation and the measured-balance
experiment it enables."""

from __future__ import annotations

import pytest

from repro.harness.throughput import build_load_network
from repro.harness.workloads import drive_traffic
from repro.network.instrumentation import attach_usage_meter
from repro.topology.generators import random_irregular


def run_with_meter(routing: str, rate=0.04, n_switches=8, seed=5):
    topo = random_irregular(n_switches, seed=seed, hosts_per_switch=2)
    net = build_load_network(topo, routing)
    usage = attach_usage_meter(net)
    drive_traffic(net, rate_bytes_per_ns_per_host=rate, packet_size=512,
                  duration_ns=120_000, warmup_ns=20_000)
    return net, usage


class TestMeterMechanics:
    def test_only_fabric_channels_metered(self):
        net, usage = run_with_meter("updown", rate=0.01)
        topo = net.topo
        for cu in usage.channels.values():
            assert topo.is_switch(cu.from_node)
            assert topo.is_switch(cu.to_node)

    def test_busy_time_accumulates(self):
        _net, usage = run_with_meter("updown")
        assert usage.loads().sum() > 0
        assert usage.packet_counts().sum() > 0

    def test_busy_time_bounded_by_observation(self):
        _net, usage = run_with_meter("updown")
        # A channel cannot be busy longer than the observed window
        # (plus in-flight packets at the cut; allow slack for those).
        assert usage.max_utilization() < 1.2

    def test_fairness_index_in_range(self):
        _net, usage = run_with_meter("updown")
        assert 0.0 < usage.jain_fairness() <= 1.0

    def test_empty_meter_degenerate_values(self):
        topo = random_irregular(4, seed=1)
        net = build_load_network(topo, "updown")
        usage = attach_usage_meter(net)
        assert usage.jain_fairness() == 1.0
        assert usage.max_utilization() == 0.0
        assert usage.root_concentration() == 0.0


class TestMeasuredBalance:
    """The paper's traffic-balance argument, observed dynamically."""

    @pytest.fixture(scope="class")
    def measured(self):
        out = {}
        for routing in ("updown", "itb"):
            _net, usage = run_with_meter(routing, rate=0.05,
                                         n_switches=12, seed=7)
            out[routing] = usage
        return out

    def test_itb_spreads_load(self, measured):
        """ITB routing's busy-time distribution is at least as even as
        up*/down*'s (higher Jain index)."""
        assert measured["itb"].jain_fairness() >= \
            measured["updown"].jain_fairness() * 0.98

    def test_itb_relieves_root_channels(self, measured):
        """The share of fabric busy-time carried next to the root
        shrinks under ITB routing."""
        assert measured["itb"].root_concentration() <= \
            measured["updown"].root_concentration() + 0.02

    def test_hottest_channel_cooler_under_itb(self, measured):
        assert measured["itb"].max_utilization() <= \
            measured["updown"].max_utilization() * 1.05
