"""Causal span tracing: span model, GM-chain propagation, sampling,
fault kills, and builder-level configuration.

The tracer's contract (``docs/TRACING.md``):

* a sampled GM message produces one connected span tree covering
  gm_send -> send queue -> wire (per hop) -> receive -> gm_recv, with
  ack/nack control packets as child subtrees,
* unsampled messages leave zero spans (and the disabled tracer leaves
  the fabric attribute ``None`` — nothing in the hot path allocates),
* retransmissions appear as retry-children of the first attempt and
  worms cut by fault injection close with status ``"killed"``,
* dumps are canonical: byte-stable serialization, lossless reload.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.network.faults import FaultEvent, FaultPlan, install_fault_plan
from repro.obs.tracing import (
    SpanTracer,
    configure,
    configured_sample_every,
    disable,
    load_dump,
    span_tree,
    tree_signature,
)
from repro.sim.engine import Timeout


def build(reliable=True, tracer=None, routing="updown", **kw):
    cfg = NetworkConfig(
        firmware="itb", routing=routing, reliable=reliable,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0), **kw,
    )
    net = build_network("fig6", config=cfg)
    if tracer is not None:
        net.fabric.tracer = tracer
    return net


def send_messages(net, n=1, size=512, until=10_000_000.0):
    a, b = net.gm("host1"), net.gm("host2")
    got = []

    def rx():
        while True:
            msg = yield b.receive()
            got.append(msg.tag)

    def tx():
        for i in range(n):
            a.send(b.host, size, tag=i)
            yield Timeout(30_000.0)

    net.sim.process(rx(), name="rx")
    net.sim.process(tx(), name="tx")
    net.sim.run(until=until)
    return got


# ---------------------------------------------------------------------------
# span model
# ---------------------------------------------------------------------------


class TestSpanModel:
    def test_close_is_idempotent_first_wins(self):
        tr = SpanTracer()
        s = tr.begin("message", 10.0)
        s.close(20.0, "ok")
        s.close(30.0, "killed")
        assert s.end == 20.0
        assert s.status == "ok"
        assert s.duration_ns == 10.0

    def test_parentage_assigns_trace_ids(self):
        tr = SpanTracer()
        r1 = tr.begin("message", 0.0)
        c1 = tr.begin("attempt", 1.0, parent=r1)
        r2 = tr.begin("message", 2.0)
        assert c1.trace_id == r1.trace_id
        assert c1.parent_id == r1.span_id
        assert r2.trace_id != r1.trace_id
        assert tr.roots() == [r1, r2]
        assert tr.spans_of(r1.trace_id) == [r1, c1]

    def test_packet_trace_stage_keys(self):
        """A stage opened at one state machine under an explicit key is
        finished at another by key alone."""
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        attempt = tr.begin("attempt", 0.0, parent=root)
        ctx = tr.packet(root, attempt)
        ctx.begin("send_queue", 1.0, key="queue")
        ctx.begin("mcp_send", 2.0, key="dispatch")
        assert ctx.finish("queue", 3.0).name == "send_queue"
        assert ctx.finish("dispatch", 4.0).name == "mcp_send"
        assert ctx.finish("queue", 5.0) is None  # already drained
        assert all(s.end is not None for s in tr.spans if s.name != "message"
                   and s.name != "attempt")

    def test_sampling_every_nth(self):
        tr = SpanTracer(sample_every=3)
        assert [tr.sample() for _ in range(7)] == [
            True, False, False, True, False, False, True]

    def test_sampling_zero_admits_nothing(self):
        tr = SpanTracer(sample_every=0)
        assert not any(tr.sample() for _ in range(5))

    def test_dump_roundtrip_lossless(self):
        tr = SpanTracer(sample_every=2)
        root = tr.begin("message", 0.0, component="gm[a]", tag=7)
        tr.begin("wire", 1.0, parent=root, component="wire[a->b]").close(5.0)
        root.close(6.0)
        recs = load_dump(tr.dump_json())
        assert recs == [s.to_dict() for s in tr.spans]
        assert tr.dump_json() == tr.dump_json()

    def test_load_dump_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a span dump"):
            load_dump('{"format": "something-else", "spans": []}')

    def test_tree_signature_ignores_id_assignment_order(self):
        """Two tracers recording the same spans in different creation
        order produce equal signatures."""
        a, b = SpanTracer(), SpanTracer()
        ra = a.begin("message", 0.0)
        a.begin("x", 1.0, parent=ra).close(2.0)
        a.begin("y", 1.0, parent=ra).close(3.0)
        ra.close(4.0)
        rb = b.begin("message", 0.0)
        b.begin("y", 1.0, parent=rb).close(3.0)
        b.begin("x", 1.0, parent=rb).close(2.0)
        rb.close(4.0)
        assert tree_signature(a.spans) == tree_signature(b.spans)

    def test_span_tree_nests_and_sorts(self):
        tr = SpanTracer()
        root = tr.begin("message", 0.0)
        tr.begin("late", 5.0, parent=root).close(6.0)
        tr.begin("early", 1.0, parent=root).close(2.0)
        roots = span_tree(tr.spans)
        assert len(roots) == 1
        assert [c["name"] for c in roots[0]["children"]] == ["early", "late"]


# ---------------------------------------------------------------------------
# end-to-end propagation through the GM stack
# ---------------------------------------------------------------------------


class TestGmChain:
    def test_single_send_full_chain(self):
        tracer = SpanTracer()
        net = build(tracer=tracer)
        got = send_messages(net, n=1)
        assert got == [0]
        roots = tracer.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "message"
        assert root.status == "ok"
        names = {s.name for s in tracer.spans_of(root.trace_id)}
        assert {"message", "host_send", "attempt", "sdma", "send_queue",
                "mcp_send", "wire", "recv", "gm_recv"} <= names
        # The destination acks GM data packets; the control subtree
        # hangs off the same trace.
        assert "ack" in names

    def test_all_spans_share_component_labels(self):
        tracer = SpanTracer()
        net = build(tracer=tracer)
        send_messages(net, n=1)
        comps = {s.component for s in tracer.spans}
        assert any(c.startswith("gm[") for c in comps)
        assert any(c.startswith("mcp[") for c in comps)
        assert any(c.startswith("wire[") for c in comps)

    def test_wire_span_carries_hops(self):
        tracer = SpanTracer()
        net = build(tracer=tracer)
        send_messages(net, n=1)
        wires = [s for s in tracer.spans if s.name == "wire"]
        assert wires, "no wire spans recorded"
        hop_parents = {s.parent_id for s in tracer.spans
                       if s.name.startswith("hop")}
        assert {w.span_id for w in wires} & hop_parents

    def test_multi_packet_message_one_root(self):
        """A message above the MTU fans into several attempt spans
        under one root."""
        tracer = SpanTracer()
        net = build(tracer=tracer)
        send_messages(net, n=1, size=10_000)
        roots = tracer.roots()
        assert len(roots) == 1
        attempts = [s for s in tracer.spans if s.name == "attempt"]
        assert len(attempts) > 1

    def test_sampling_every_second_message(self):
        tracer = SpanTracer(sample_every=2)
        net = build(tracer=tracer)
        got = send_messages(net, n=4, until=40_000_000.0)
        assert sorted(got) == [0, 1, 2, 3]
        assert len(tracer.roots()) == 2

    def test_disabled_tracer_records_nothing(self):
        net = build()
        assert net.fabric.tracer is None
        got = send_messages(net, n=2, until=20_000_000.0)
        assert sorted(got) == [0, 1]

    def test_itb_route_records_buffer_and_reinjection(self):
        """An ITB route's trace shows ejection, buffer residency, and
        re-injection stages at the in-transit host."""
        tracer = SpanTracer()
        net = build(tracer=tracer, routing="itb")
        from repro.harness.paths import fig6_paths

        paths = fig6_paths(net.topo, net.roles)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(rx(), name="rx")
        a.send(b.host, 512, tag=9, route=paths.itb5)
        net.sim.run(until=10_000_000)
        assert got == [9]
        names = {s.name for s in tracer.spans}
        assert "itb_buffer" in names
        assert "itb_detect" in names
        assert "itb_program" in names or "itb_queue" in names
        # Two wire segments (source -> ITB host, ITB host -> dest); the
        # ack packet contributes further wire spans to the same trace.
        data_trace = tracer.roots()[0].trace_id
        segs = {s.attrs.get("seg") for s in tracer.spans_of(data_trace)
                if s.name == "wire"}
        assert {0, 1} <= segs


# ---------------------------------------------------------------------------
# faults, retransmissions, kills
# ---------------------------------------------------------------------------


class TestFaults:
    def _interswitch_links(self, net):
        sw1, sw2 = net.roles["sw1"], net.roles["sw2"]
        return sorted(
            link.link_id for link in net.topo.links
            if {link.node_a, link.node_b} == {sw1, sw2})

    def test_killed_worm_closes_span_and_retry_children_appear(self):
        """Every inter-switch cable dies under traffic: cut worms close
        their wire spans ``"killed"`` and the delivering retransmission
        appears as a retry-child of the first attempt."""
        tracer = SpanTracer()
        net = build(reliable=True, routing="itb", tracer=tracer)
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="link-down", target=link_id, at_ns=2_000.0,
                       repair_ns=500_000.0)
            for link_id in self._interswitch_links(net)))
        install_fault_plan(net, plan)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        def tx():
            yield Timeout(100.0)  # in flight when the cables die
            a.send(b.host, 4096, tag=1)

        net.sim.process(rx(), name="rx")
        net.sim.process(tx(), name="tx")
        net.sim.run(until=60_000_000)
        assert got == [1]
        statuses = {s.status for s in tracer.spans}
        assert "killed" in statuses
        retries = [s for s in tracer.spans if s.name == "attempt"
                   and s.attrs.get("retry", 0) > 0]
        assert retries, "no retransmission attempt spans"
        # Retry attempts parent under the first attempt of their seq.
        by_id = {s.span_id: s for s in tracer.spans}
        for r in retries:
            assert by_id[r.parent_id].name == "attempt"
        # The message root still converged.
        roots = [s for s in tracer.roots() if s.name == "message"]
        assert roots and roots[0].status == "ok"

    def test_no_route_closes_attempt(self):
        """A send with no route to the destination closes the attempt
        span ``"no-route"`` instead of leaking it open."""
        tracer = SpanTracer()
        net = build(reliable=True, tracer=tracer)
        a = net.gm("host1")
        # Point at a host id the route tables don't know.
        bogus = max(net.nics) + 1000
        a.send(bogus, 256, tag=3)
        net.sim.run(until=200_000)
        attempts = [s for s in tracer.spans if s.name == "attempt"]
        assert attempts
        assert all(s.status == "no-route" for s in attempts if s.end
                   is not None and s.status != "open")


# ---------------------------------------------------------------------------
# builder-level configuration
# ---------------------------------------------------------------------------


class TestConfigure:
    def test_configure_attaches_tracer_to_every_build(self):
        try:
            configure(sample_every=4)
            assert configured_sample_every() == 4
            net = build()
            assert isinstance(net.fabric.tracer, SpanTracer)
            assert net.fabric.tracer.sample_every == 4
        finally:
            disable()
        assert configured_sample_every() is None
        assert build().fabric.tracer is None

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="sample_every"):
            configure(sample_every=0)
