"""Faults x engine fast paths: the oracle equivalence must survive.

The express worm lane and the batched Stop&Go burst machinery are
pure optimizations: with dynamic faults cutting worms mid-flight and
probabilistic faults dropping packets, a run with the fast paths on
must produce *identical* delivery outcomes — same messages, same
timestamps, same reliability counters — as the stepped hop-by-hop
oracle with them off.
"""

from __future__ import annotations

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.network.faults import FaultEvent, FaultPlan, install_fault_plan
from repro.sim.engine import Timeout


def _interswitch_links(net):
    sw1, sw2 = net.roles["sw1"], net.roles["sw2"]
    return sorted(
        link.link_id for link in net.topo.links
        if {link.node_a, link.node_b} == {sw1, sw2})


def _faulted_burst_run(express: bool):
    """A bursty bidirectional workload under probabilistic + dynamic
    faults; returns (delivery records, counters, express stats)."""
    cfg = NetworkConfig(
        firmware="itb", routing="itb", reliable=True, seed=17,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    net.fabric.express_enabled = express
    inter = _interswitch_links(net)
    plan = FaultPlan(
        loss_probability=0.15, corrupt_probability=0.05, seed=9,
        events=(
            FaultEvent(kind="link-down", target=inter[0],
                       at_ns=120_000.0, repair_ns=250_000.0),
            FaultEvent(kind="host-down", target=net.roles["itb"],
                       at_ns=500_000.0, repair_ns=200_000.0),
        ),
    )
    install_fault_plan(net, plan)
    sim = net.sim
    a, b = net.gm("host1"), net.gm("host2")
    records = []

    def receiver(gm):
        while True:
            msg = yield gm.receive()
            records.append((gm.host, msg.src, msg.tag, msg.length,
                            sim.now))

    def burst_sender(gm, dst, n, burst, gap_ns):
        # Back-to-back bursts drive the Stop&Go burst lane; the gap
        # lets the window drain between bursts.
        for i in range(n):
            gm.send(dst, 2048, tag=i)
            if (i + 1) % burst == 0:
                yield Timeout(gap_ns)

    sim.process(receiver(a), name="rx-a")
    sim.process(receiver(b), name="rx-b")
    sim.process(burst_sender(a, b.host, 10, 5, 100_000.0), name="tx-a")
    sim.process(burst_sender(b, a.host, 6, 3, 80_000.0), name="tx-b")
    sim.run(until=100_000_000)
    counters = (
        a.messages_sent, b.messages_sent,
        a.messages_received, b.messages_received,
        a.retransmissions, b.retransmissions,
        a.timeouts, b.timeouts,
        a.nacks_sent, b.nacks_sent,
        plan.lost, plan.corrupted, plan.killed_in_flight,
        plan.faults_injected, plan.repairs, plan.remap_events,
    )
    return records, counters, net.fabric.express_stats


class TestFaultFastpathComposition:
    def test_express_and_stepped_identical_under_faults(self):
        ex_records, ex_counters, ex_stats = _faulted_burst_run(True)
        st_records, st_counters, st_stats = _faulted_burst_run(False)
        # Identical deliveries, including exact timestamps.
        assert ex_records == st_records
        assert ex_counters == st_counters
        # Both runs really exercised faults and full delivery.
        delivered_tags = sorted(
            (dst, tag) for dst, _src, tag, _len, _t in ex_records)
        assert delivered_tags == sorted(
            [(4, i) for i in range(10)] + [(2, i) for i in range(6)])
        assert ex_counters[10] + ex_counters[11] > 0  # lost/corrupted
        # And the two runs took different engine paths to get there.
        assert ex_stats.hits > 0
        assert st_stats.hits == 0
        assert st_stats.fallbacks > 0


class TestFaultAdaptiveComposition:
    """Faults x adaptive selection: link-down remap is a *forced*
    reselection through the same selector, so a loaded default
    in-transit host must stay avoided across fault and repair, while
    the reliable-GM delivery guarantees hold unchanged."""

    def test_linkdown_remap_with_least_loaded_converges_legal(self):
        from repro.gm.mapper import ItbReselector
        from repro.routing.cdg import is_deadlock_free
        from repro.routing.selectors import (MapCongestionView,
                                             make_selector)
        from repro.topology.generators import random_irregular

        cfg = NetworkConfig(
            firmware="itb", routing="itb", reliable=True, seed=17,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        topo = random_irregular(8, seed=11, hosts_per_switch=2)
        net = build_network(topo, config=cfg)

        def itb_pairs():
            pairs = []
            for src in sorted(net.nics):
                table = net.nics[src].route_table
                for dst in table.destinations():
                    route = table.entries[dst]
                    if len(route.segments) > 1:
                        pairs.append((src, dst, route))
            return pairs

        pairs = itb_pairs()
        assert pairs, "study fabric must route some pairs via an ITB"
        src, dst, route = pairs[0]
        default_host = route.itb_hosts[0]
        candidates = net.topo.hosts_on(net.topo.switch_of(default_host))
        assert len(candidates) >= 2, "need an alternate split to move to"

        # Load the static pick; every remap must now avoid it.
        view = MapCongestionView({default_host: 4096.0})
        reselector = ItbReselector(
            net, make_selector("least-loaded", view=view))

        # Cut the first inter-switch hop of the pair's static route.
        hop = route.segments[0].switch_path[:2]
        down = next(link.link_id for link in net.topo.links
                    if {link.node_a, link.node_b} == set(hop))
        plan = FaultPlan(
            loss_probability=0.1, corrupt_probability=0.05, seed=9,
            events=(FaultEvent(kind="link-down", target=down,
                               at_ns=120_000.0, repair_ns=250_000.0),),
        )
        install_fault_plan(net, plan)

        sim = net.sim
        a, b = net.gm_hosts[src], net.gm_hosts[dst]
        records = []

        def receiver(gm):
            while True:
                msg = yield gm.receive()
                records.append((gm.host, msg.src, msg.tag))

        def sender(gm, to, n, gap_ns):
            for i in range(n):
                gm.send(to, 2048, tag=i)
                yield Timeout(gap_ns)

        sim.process(receiver(a), name="rx-a")
        sim.process(receiver(b), name="rx-b")
        sim.process(sender(a, dst, 8, 60_000.0), name="tx-a")
        sim.process(sender(b, src, 8, 60_000.0), name="tx-b")
        sim.run(until=100_000_000)

        # Reliable GM delivered everything, in the face of the fault.
        assert sorted(records) == sorted(
            [(dst, src, i) for i in range(8)]
            + [(src, dst, i) for i in range(8)])
        assert a.messages_received == 8 and b.messages_received == 8

        # The fault really forced reselection through the selector.
        assert plan.remap_events > 0
        assert reselector.forced >= 1
        assert reselector.selector.engaged > 0

        # Converged state: a legal alternate split off the loaded host.
        post = itb_pairs()
        assert post, "repair must restore the ITB routes"
        loaded_switch = net.topo.switch_of(default_host)
        for _s, _d, r in post:
            for host, nxt in zip(r.itb_hosts, r.segments[1:]):
                assert nxt.src == host
                assert host in net.topo.hosts_on(net.topo.switch_of(host))
                if net.topo.switch_of(host) == loaded_switch:
                    assert host != default_host
        assert is_deadlock_free(
            net.topo,
            [r for s in sorted(net.nics)
             for r in net.nics[s].route_table.entries.values()])
