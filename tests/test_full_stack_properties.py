"""Property-based tests over the full stack (hypothesis).

Small random networks, random traffic — structural invariants that
must hold regardless of topology, routing, or firmware interleaving.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.topology.generators import random_irregular


def _quiet_cfg(routing="itb", **kw):
    return NetworkConfig(
        firmware="itb", routing=routing,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        reliable=False, **kw,
    )


@given(
    topo_seed=st.integers(min_value=0, max_value=200),
    n_switches=st.integers(min_value=2, max_value=6),
    n_messages=st.integers(min_value=1, max_value=15),
    traffic_seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_every_injected_packet_is_delivered_exactly_once(
    topo_seed, n_switches, n_messages, traffic_seed
):
    """Unloaded-to-moderate random traffic on a random fabric: all
    packets arrive, none twice, channels all drain."""
    import numpy as np

    topo = random_irregular(n_switches, seed=topo_seed)
    net = build_network(topo, config=_quiet_cfg())
    hosts = sorted(net.gm_hosts)
    rng = np.random.default_rng(traffic_seed)
    delivered = []

    outstanding = {"n": n_messages}
    done = net.sim.event("all")

    def on_final(tp):
        assert not tp.dropped, tp.drop_reason
        delivered.append(tp.pid)
        outstanding["n"] -= 1
        if outstanding["n"] == 0:
            done.succeed()

    for _ in range(n_messages):
        src = hosts[int(rng.integers(len(hosts)))]
        choices = [h for h in hosts if h != src]
        dst = choices[int(rng.integers(len(choices)))]
        size = int(rng.integers(0, 2048))
        net.nics[src].firmware.host_send(
            dst=dst, payload_len=size, gm={"last": True},
            on_delivered=on_final,
        )
    net.sim.run_until_event(done)

    assert len(delivered) == n_messages
    assert len(set(delivered)) == n_messages  # exactly once
    # Wormhole invariant: every channel released after the drain.
    assert all(v == 0 for v in net.fabric.utilization_snapshot().values())
    # NIC buffers all freed.
    for nic in net.nics.values():
        assert nic.recv_buffers.occupancy_bytes == 0


@given(
    topo_seed=st.integers(min_value=0, max_value=100),
    n_switches=st.integers(min_value=3, max_value=6),
)
@settings(max_examples=15, deadline=None)
def test_itb_and_updown_deliver_identical_message_sets(topo_seed, n_switches):
    """Same traffic under both routings: identical delivery outcome
    (latencies differ, correctness doesn't)."""
    def run(routing):
        topo = random_irregular(n_switches, seed=topo_seed)
        net = build_network(topo, config=_quiet_cfg(routing=routing))
        hosts = sorted(net.gm_hosts)
        got = []
        remaining = {"n": 0}
        done = net.sim.event("all")

        def on_final(tp):
            got.append((tp.src, tp.dst, tp.payload_len))
            remaining["n"] -= 1
            if remaining["n"] == 0:
                done.succeed()

        for i, src in enumerate(hosts):
            dst = hosts[(i + 1) % len(hosts)]
            remaining["n"] += 1
            net.nics[src].firmware.host_send(
                dst=dst, payload_len=64 + i, gm={"last": True},
                on_delivered=on_final,
            )
        net.sim.run_until_event(done)
        return sorted(got)

    assert run("updown") == run("itb")


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_forward_counts_match_route_itbs(seed):
    """The number of in-transit forwards observed on the NICs equals
    the number of ITBs in the routes actually used."""
    topo = random_irregular(5, seed=seed)
    net = build_network(topo, config=_quiet_cfg(routing="itb"))
    hosts = sorted(net.gm_hosts)
    expected_forwards = 0
    remaining = {"n": 0}
    done = net.sim.event("all")

    def on_final(tp):
        remaining["n"] -= 1
        if remaining["n"] == 0:
            done.succeed()

    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            route = net.nics[src].route_table.lookup(dst)
            expected_forwards += route.n_itbs
            remaining["n"] += 1
            net.nics[src].firmware.host_send(
                dst=dst, payload_len=32, gm={"last": True},
                on_delivered=on_final,
            )
    net.sim.run_until_event(done)
    stats = net.total_stats()
    assert stats["packets_forwarded"] == expected_forwards
