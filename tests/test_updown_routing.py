"""Tests for the up*/down* router."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.cdg import is_deadlock_free
from repro.routing.routes import RouteError
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import (
    fig1_topology,
    linear_switches,
    mesh_2d,
    random_irregular,
)


@pytest.fixture
def fig1_router():
    topo, roles = fig1_topology()
    orientation = build_orientation(topo, root=roles["sw0"])
    return topo, roles, UpDownRouter(topo, orientation)


class TestSwitchRoute:
    def test_identity(self, fig1_router):
        topo, roles, router = fig1_router
        assert router.switch_route(roles["sw3"], roles["sw3"]) == [roles["sw3"]]

    def test_avoids_forbidden_shortcut(self, fig1_router):
        topo, roles, router = fig1_router
        path = router.switch_route(roles["sw4"], roles["sw1"])
        assert router.orientation.is_valid_updown_path(topo, path)
        # 4 -> 6 -> 1 is forbidden; the route must be longer.
        assert len(path) > 3

    def test_every_route_is_valid(self, fig1_router):
        topo, roles, router = fig1_router
        for a, b in itertools.permutations(topo.switches(), 2):
            path = router.switch_route(a, b)
            assert path[0] == a and path[-1] == b
            assert router.orientation.is_valid_updown_path(topo, path)

    def test_shortest_among_valid(self, fig1_router):
        """BFS result matches brute-force shortest valid path length."""
        topo, roles, router = fig1_router
        adj = {
            s: sorted({n for (_p, n, _l) in topo.switch_neighbors(s)})
            for s in topo.switches()
        }

        def brute_force(a, b, max_len=7):
            from collections import deque

            best = None
            q = deque([[a]])
            while q:
                path = q.popleft()
                if len(path) > max_len:
                    continue
                if path[-1] == b:
                    if router.orientation.is_valid_updown_path(topo, path):
                        return len(path)
                    continue
                for v in adj[path[-1]]:
                    if v not in path:
                        q.append(path + [v])
            return best

        for a, b in itertools.permutations(topo.switches(), 2):
            bf = brute_force(a, b)
            got = len(router.switch_route(a, b))
            assert got == bf, f"{a}->{b}: got {got}, brute force {bf}"

    def test_rejects_host_endpoints(self, fig1_router):
        topo, roles, router = fig1_router
        with pytest.raises(RouteError):
            router.switch_route(roles["host_on_sw0"], roles["sw1"])


class TestHostRoutes:
    def test_route_delivers(self, fig1_router):
        topo, roles, router = fig1_router
        r = router.route(roles["host_on_sw4"], roles["host_on_sw1"])
        assert topo.walk_route(r.src, list(r.ports)) == r.dst

    def test_same_host_rejected(self, fig1_router):
        _, roles, router = fig1_router
        h = roles["host_on_sw0"]
        with pytest.raises(RouteError):
            router.route(h, h)

    def test_ports_length_matches_switch_path(self, fig1_router):
        topo, roles, router = fig1_router
        r = router.route(roles["host_on_sw3"], roles["host_on_sw5"])
        assert len(r.ports) == len(r.switch_path)

    def test_all_pairs_complete_and_deadlock_free(self, fig1_router):
        topo, roles, router = fig1_router
        routes = router.all_pairs()
        hosts = topo.hosts()
        assert len(routes) == len(hosts) * (len(hosts) - 1)
        assert is_deadlock_free(topo, routes.values())

    def test_same_switch_hosts_route_through_one_switch(self):
        topo = linear_switches(2, hosts_per_switch=2)
        router = UpDownRouter(topo)
        h_same = topo.hosts_on(topo.switches()[0])
        r = router.route(h_same[0], h_same[1])
        assert r.n_switches == 1

    def test_route_via_explicit_path(self, fig1_router):
        topo, roles, router = fig1_router
        src, dst = roles["host_on_sw4"], roles["host_on_sw1"]
        explicit = [roles["sw4"], roles["sw2"], roles["sw0"], roles["sw1"]]
        r = router.route_via(src, dst, explicit)
        assert r.switch_path == tuple(explicit)
        assert topo.walk_route(src, list(r.ports)) == dst

    def test_route_via_wrong_endpoints_rejected(self, fig1_router):
        topo, roles, router = fig1_router
        with pytest.raises(RouteError):
            router.route_via(
                roles["host_on_sw4"], roles["host_on_sw1"],
                [roles["sw3"], roles["sw1"]],
            )


class TestOnRegularTopologies:
    def test_mesh_routes_valid(self):
        topo = mesh_2d(3, 3)
        router = UpDownRouter(topo)
        routes = router.all_pairs()
        for r in routes.values():
            assert router.is_valid(r)
        assert is_deadlock_free(topo, routes.values())

    @given(n=st.integers(min_value=2, max_value=14),
           seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_random_irregular_always_routable_and_deadlock_free(self, n, seed):
        topo = random_irregular(n, seed=seed)
        router = UpDownRouter(topo)
        routes = router.all_pairs()
        for r in routes.values():
            assert router.is_valid(r)
            assert topo.walk_route(r.src, list(r.ports)) == r.dst
        assert is_deadlock_free(topo, routes.values())
