"""Tests for the time-series sampler riding the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.sim.engine import Simulator, Timeout


def _ramp_setup(interval: float = 10.0):
    """A sim with one gauge stepped by a process every 25 ns."""
    sim = Simulator()
    reg = MetricsRegistry()
    gauge = reg.gauge("level", component="nic[a]")

    def stepper():
        for i in range(1, 5):
            yield Timeout(25.0)
            gauge.set(i)

    sim.process(stepper(), name="stepper")
    sampler = Sampler(sim, reg, interval_ns=interval).start()
    return sim, reg, gauge, sampler


class TestSampling:
    def test_deterministic_sample_times(self):
        sim, _reg, _gauge, sampler = _ramp_setup(interval=10.0)
        sim.run(until=100.0)
        ts = sampler.get("level", component="nic[a]")
        assert ts.times() == [pytest.approx(10.0 * i) for i in range(11)]

    def test_two_runs_identical(self):
        runs = []
        for _ in range(2):
            sim, _reg, _gauge, sampler = _ramp_setup(interval=10.0)
            sim.run(until=100.0)
            ts = sampler.get("level", component="nic[a]")
            runs.append((ts.times(), ts.values()))
        assert runs[0] == runs[1]

    def test_samples_observe_post_state(self):
        # The gauge steps at t=25/50/...; the sample tick at t=50 runs
        # with low dispatch priority, so it must see the t=50 value.
        sim, _reg, _gauge, sampler = _ramp_setup(interval=25.0)
        sim.run(until=100.0)
        ts = sampler.get("level", component="nic[a]")
        assert ts.values() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_stop_halts_future_ticks(self):
        sim, _reg, _gauge, sampler = _ramp_setup(interval=10.0)
        sim.run(until=30.0)
        sampler.stop()
        assert not sampler.running
        n = sampler.n_ticks
        sim.run(until=100.0)
        assert sampler.n_ticks == n

    def test_max_samples_cap(self):
        sim, _reg, _gauge, sampler = _ramp_setup(interval=10.0)
        sampler.max_samples = 3
        sim.run(until=500.0)
        assert sampler.n_ticks == 3
        assert not sampler.running

    def test_late_registered_gauge_is_picked_up(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("early")
        sampler = Sampler(sim, reg, interval_ns=10.0).start()

        def register_later():
            yield Timeout(35.0)
            reg.gauge("late").set(9.0)

        sim.process(register_later(), name="late")
        sim.run(until=60.0)
        late = sampler.get("late")
        # First sampled at the first tick after registration (t=40).
        assert late.times()[0] == pytest.approx(40.0)
        assert all(v == 9.0 for v in late.values())
        assert len(sampler.get("early")) == 7  # t=0..60

    def test_select_predicate_filters(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("keep")
        reg.gauge("drop")
        sampler = Sampler(sim, reg, interval_ns=10.0,
                          select=lambda g: g.name == "keep").start()
        sim.run(until=20.0)
        assert {ts.name for ts in sampler.all_series()} == {"keep"}

    def test_counters_are_not_sampled(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.counter("packets")
        reg.gauge("depth")
        sampler = Sampler(sim, reg, interval_ns=10.0).start()
        sim.run(until=20.0)
        assert {ts.name for ts in sampler.all_series()} == {"depth"}

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Sampler(Simulator(), MetricsRegistry(), interval_ns=0.0)

    def test_get_missing_series_raises(self):
        sim, _reg, _gauge, sampler = _ramp_setup()
        with pytest.raises(KeyError):
            sampler.get("level", component="nic[other]")
