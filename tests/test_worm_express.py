"""Express-vs-stepped worm flight equivalence suite.

The express lane (``docs/ENGINE_FASTPATH.md``, "Express worm flight")
must be *observationally identical* to the stepped generator: every
scenario here runs twice — ``fabric.express_enabled`` on and off — and
asserts identical per-worm timing tuples
(``inject_time``/``header_time``/``complete_time``/``blocked_ns``)
and identical observer logs.  The deterministic scenarios are built
tie-free (no two observable events share a timestamp), so their logs
compare as ordered sequences; the hypothesis property test drives
random contended traffic and compares per-worm tuples exactly plus
the event log as a multiset (same-timestamp dispatch order is the one
legitimate freedom the engine keeps).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.paths import fig6_paths
from repro.mcp.packet_format import encode_packet
from repro.network.fabric import Fabric
from repro.network.worm import Worm
from repro.obs.tracing import SpanTracer, tree_signature
from repro.routing.routes import SourceRoute
from repro.sim.engine import SimulationError, Simulator
from repro.topology.graph import Topology


class LogObserver:
    """Records header/complete notifications into a shared log."""

    def __init__(self, log: list, gate=None):
        self.log = log
        self.gate = gate

    def on_header(self, worm, t):
        self.log.append(("header", worm.meta["tag"], t))
        return self.gate

    def on_complete(self, worm, t):
        self.log.append(("complete", worm.meta["tag"], t))


def _single_switch():
    """host a -- switch -- hosts b, c (SAN, 3 m cables)."""
    topo = Topology()
    sw = topo.add_switch(n_ports=6)
    a = topo.attach_host(sw, 0, name="a")
    b = topo.attach_host(sw, 1, name="b")
    c = topo.attach_host(sw, 2, name="c")
    sim = Simulator()
    fabric = Fabric(sim, topo, Timings())
    return sim, fabric, sw, a, b, c


def _line(n_switches: int):
    """A line of switches with one host at each end."""
    topo = Topology()
    switches = [topo.add_switch(n_ports=4) for _ in range(n_switches)]
    for i in range(n_switches - 1):
        topo.connect(switches[i], 2, switches[i + 1], 3)
    src = topo.attach_host(switches[0], 0, name="src")
    dst = topo.attach_host(switches[-1], 1, name="dst")
    seg = SourceRoute(
        src=src, dst=dst,
        ports=(2,) * (n_switches - 1) + (1,),
        switch_path=tuple(switches),
    )
    sim = Simulator()
    fabric = Fabric(sim, topo, Timings())
    return sim, fabric, seg


def _launch_at(sim, fabric, seg, payload, obs, tag, at=0.0):
    image = encode_packet(seg, payload)
    worm = Worm(sim, fabric, seg, image, observer=obs, meta={"tag": tag})
    if at == 0.0:
        worm.launch()
    else:
        sim.schedule(at, worm.launch)
    return worm


def _records(worms: dict) -> dict:
    return {
        tag: (w.inject_time, w.header_time, w.complete_time, w.blocked_ns)
        for tag, w in worms.items()
    }


def _run_both(scenario):
    """Run a scenario with the express lane on and off; return both."""
    express = scenario(True)
    stepped = scenario(False)
    return express, stepped


def _assert_equivalent(express, stepped):
    ex_records, ex_log, _ = express
    st_records, st_log, _ = stepped
    assert ex_records == st_records
    assert ex_log == st_log


# ---------------------------------------------------------------------------
# deterministic scenarios
# ---------------------------------------------------------------------------


class TestUncontended:
    def _sequential(self, express: bool):
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        log: list = []
        obs = LogObserver(log)
        seg = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        worms = {
            i: _launch_at(sim, fabric, seg, b"x" * 64, obs, i,
                          at=i * 10_000.0)
            for i in range(3)
        }
        sim.run()
        return _records(worms), log, fabric

    def test_sequential_single_switch(self):
        express, stepped = _run_both(self._sequential)
        _assert_equivalent(express, stepped)
        assert express[2].express_stats.hits == 3
        assert express[2].express_stats.stepped_hops == 0
        assert stepped[2].express_stats.hits == 0
        assert stepped[2].express_stats.fallbacks == 3

    def _long_line(self, express: bool):
        sim, fabric, seg = _line(5)
        fabric.express_enabled = express
        log: list = []
        obs = LogObserver(log)
        worms = {0: _launch_at(sim, fabric, seg, b"y" * 200, obs, 0)}
        sim.run()
        return _records(worms), log, fabric

    def test_five_switch_line(self):
        express, stepped = _run_both(self._long_line)
        _assert_equivalent(express, stepped)
        assert express[2].express_stats.hits == 1

    def _tiny(self, express: bool):
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        log: list = []
        obs = LogObserver(log)
        seg = SourceRoute(src=a, dst=b, ports=(1,), switch_path=(sw,))
        worms = {0: _launch_at(sim, fabric, seg, b"", obs, 0)}
        sim.run()
        return _records(worms), log, fabric

    def test_tiny_payload_remaining_zero(self):
        """A packet shorter than early_recv_bytes (remaining == 0)."""
        _assert_equivalent(*_run_both(self._tiny))

    def _disjoint(self, express: bool):
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        log: list = []
        obs = LogObserver(log)
        seg_ac = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        seg_bc = SourceRoute(src=b, dst=c, ports=(2,), switch_path=(sw,))
        seg_ab = SourceRoute(src=a, dst=b, ports=(1,), switch_path=(sw,))
        seg_ba = SourceRoute(src=b, dst=a, ports=(0,), switch_path=(sw,))
        worms = {
            "ab": _launch_at(sim, fabric, seg_ab, b"q" * 100, obs, "ab"),
            "ba": _launch_at(sim, fabric, seg_ba, b"r" * 300, obs, "ba",
                             at=1.0),
        }
        sim.run()
        return _records(worms), log, fabric

    def test_disjoint_routes_both_express(self):
        express, stepped = _run_both(self._disjoint)
        _assert_equivalent(express, stepped)
        assert express[2].express_stats.hits == 2
        assert express[2].express_stats.fallbacks == 0


class TestContention:
    def _staggered(self, express: bool, stagger_ns: float):
        """B launches while A's express head is still mid-line."""
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        log: list = []
        obs = LogObserver(log)
        seg_a = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        seg_b = SourceRoute(src=b, dst=c, ports=(2,), switch_path=(sw,))
        worms = {
            "A": _launch_at(sim, fabric, seg_a, b"z" * 500, obs, "A"),
            "B": _launch_at(sim, fabric, seg_b, b"z" * 500, obs, "B",
                            at=stagger_ns),
        }
        sim.run()
        return _records(worms), log, fabric

    def test_contender_before_switch_acquire_demotes(self):
        """t1 lands before A's switch-output acquire time: A's tail is
        demoted back to the stepped generator mid-flight."""
        express, stepped = _run_both(lambda e: self._staggered(e, 10.0))
        _assert_equivalent(express, stepped)
        # A was counted as a hit at launch but finished some hops stepped.
        assert express[2].express_stats.hits == 1
        assert express[2].express_stats.stepped_hops > 0

    def test_same_instant_contenders(self):
        """A and B launched at the same timestamp (A first)."""
        _assert_equivalent(*_run_both(lambda e: self._staggered(e, 0.0)))

    def test_late_contender_materializes_holds(self):
        """B launches after A's header arrived: every closed-form
        acquire has matured, so A's holds materialize and B blocks on
        the real resource until A's tail drains."""
        express, stepped = _run_both(lambda e: self._staggered(e, 2_000.0))
        _assert_equivalent(express, stepped)
        records = express[0]
        assert records["B"][3] > 0  # blocked_ns
        assert express[2].express_stats.hits == 1

    def _pileup(self, express: bool):
        """Three worms funnelling into one output back to back."""
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        log: list = []
        obs = LogObserver(log)
        seg_a = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        seg_b = SourceRoute(src=b, dst=c, ports=(2,), switch_path=(sw,))
        worms = {
            "A": _launch_at(sim, fabric, seg_a, b"p" * 800, obs, "A"),
            "B": _launch_at(sim, fabric, seg_b, b"p" * 400, obs, "B",
                            at=100.0),
            "C": _launch_at(sim, fabric, seg_a, b"p" * 200, obs, "C",
                            at=200.0),
        }
        sim.run()
        return _records(worms), log, fabric

    def test_three_worm_pileup(self):
        _assert_equivalent(*_run_both(self._pileup))


class TestGate:
    def _gated(self, express: bool, contender_at=None):
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        log: list = []
        gate = sim.event("buffer-free")
        obs_gated = LogObserver(log, gate=gate)
        obs_plain = LogObserver(log)
        seg_a = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        worms = {
            "A": _launch_at(sim, fabric, seg_a, b"g" * 64, obs_gated, "A"),
        }
        if contender_at is not None:
            seg_b = SourceRoute(src=b, dst=c, ports=(2,), switch_path=(sw,))
            worms["B"] = _launch_at(sim, fabric, seg_b, b"g" * 64,
                                    obs_plain, "B", at=contender_at)
        sim.schedule(50_000.0, gate.succeed)
        sim.run()
        return _records(worms), log, fabric

    def test_gate_stall_demotes_tail(self):
        """on_header returns a gate: the express tail demotes to a
        process that waits it out, channels held."""
        express, stepped = _run_both(lambda e: self._gated(e))
        _assert_equivalent(express, stepped)
        records = express[0]
        assert records["A"][1] < 1_000      # header before the stall
        assert records["A"][2] >= 50_000    # completion after the gate

    def test_contender_during_gate_stall(self):
        """A is stalled on its gate when B launches: A's (mature)
        holds materialize and B queues behind the real resource."""
        express, stepped = _run_both(lambda e: self._gated(e, 1_000.0))
        _assert_equivalent(express, stepped)
        records = express[0]
        assert records["B"][2] > 50_000     # B finished after A's gate
        assert records["B"][3] > 0          # and accrued blocking time


class TestSelfDeadlock:
    def _deadlock_net(self):
        topo = Topology()
        s1 = topo.add_switch(n_ports=4)
        s2 = topo.add_switch(n_ports=4)
        topo.connect(s1, 0, s2, 0)
        topo.connect(s1, 1, s2, 1)
        a = topo.attach_host(s1, 2, name="a")
        b = topo.attach_host(s2, 2, name="b")
        sim = Simulator()
        fabric = Fabric(sim, topo, Timings())
        # s1 ->(0) s2 ->(1) s1 ->(0) s2: reuses the port-0 channel.
        seg = SourceRoute(src=a, dst=b, ports=(0, 1, 0, 2),
                          switch_path=(s1, s2, s1, s2))
        return sim, fabric, seg

    @pytest.mark.parametrize("express", [True, False])
    def test_reentrant_route_still_raises(self, express):
        """A self-intersecting route is express-ineligible and must
        keep failing loudly from the stepped acquire."""
        sim, fabric, seg = self._deadlock_net()
        fabric.express_enabled = express
        log: list = []
        _launch_at(sim, fabric, seg, b"x", LogObserver(log), 0)
        with pytest.raises(SimulationError, match="re-enters"):
            sim.run()
        assert fabric.express_stats.hits == 0


class TestItbCutThrough:
    def _fig8_itb(self, express: bool) -> tuple:
        config = NetworkConfig(
            firmware="itb", routing="updown",
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=config)
        net.fabric.express_enabled = express
        paths = fig6_paths(net.topo, net.roles)
        result = net.ping_pong(
            "host1", "host2", size=256, iterations=5,
            route_ab=paths.itb5, route_ba=paths.rev2,
        )
        return result.mean_ns, net.total_stats(), net.fabric

    def test_itb_reinjection_equivalent(self):
        """The fig8 in-transit path (ejection + cut-through
        re-injection at the ITB host) times identically per lane."""
        ex_mean, ex_stats, ex_fabric = self._fig8_itb(True)
        st_mean, st_stats, _ = self._fig8_itb(False)
        assert ex_mean == st_mean
        assert ex_stats == st_stats
        assert ex_fabric.express_stats.hits > 0


class TestSpanTreeEquivalence:
    """Both worm lanes must emit *identical* causal span trees: same
    names, components, statuses, and bit-identical timestamps (the
    express lane replays the stepped float-addition clock).  Signatures
    canonicalize away span-id assignment order; the uncontended GM
    scenario is additionally byte-identical as a dump."""

    def _staggered_traced(self, express: bool, stagger_ns: float):
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        fabric.tracer = SpanTracer()
        log: list = []
        obs = LogObserver(log)
        seg_a = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        seg_b = SourceRoute(src=b, dst=c, ports=(2,), switch_path=(sw,))
        _launch_at(sim, fabric, seg_a, b"z" * 500, obs, "A")
        _launch_at(sim, fabric, seg_b, b"z" * 500, obs, "B", at=stagger_ns)
        sim.run()
        return fabric.tracer

    @pytest.mark.parametrize("stagger_ns", [0.0, 10.0, 2_000.0, 10_000.0])
    def test_contended_wire_spans_identical(self, stagger_ns):
        ex = self._staggered_traced(True, stagger_ns)
        st = self._staggered_traced(False, stagger_ns)
        assert len(ex.spans) == len(st.spans) > 0
        assert tree_signature(ex.spans) == tree_signature(st.spans)

    def _gated_traced(self, express: bool):
        sim, fabric, sw, a, b, c = _single_switch()
        fabric.express_enabled = express
        fabric.tracer = SpanTracer()
        log: list = []
        gate = sim.event("buffer-free")
        seg_a = SourceRoute(src=a, dst=c, ports=(2,), switch_path=(sw,))
        _launch_at(sim, fabric, seg_a, b"g" * 64, LogObserver(log, gate), "A")
        sim.schedule(50_000.0, gate.succeed)
        sim.run()
        return fabric.tracer

    def test_gate_stall_spans_identical(self):
        ex, st = self._gated_traced(True), self._gated_traced(False)
        assert tree_signature(ex.spans) == tree_signature(st.spans)

    def _gm_itb_traced(self, express: bool) -> SpanTracer:
        config = NetworkConfig(
            firmware="itb", routing="updown", reliable=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network("fig6", config=config)
        net.fabric.express_enabled = express
        net.fabric.tracer = SpanTracer()
        paths = fig6_paths(net.topo, net.roles)
        a, b = net.gm("host1"), net.gm("host2")
        got = []

        def rx():
            while True:
                msg = yield b.receive()
                got.append(msg.tag)

        net.sim.process(rx(), name="rx")
        a.send(b.host, 1024, tag=1, route=paths.itb5)
        net.sim.run(until=10_000_000)
        assert got == [1]
        return net.fabric.tracer

    def test_full_gm_itb_chain_byte_identical_dump(self):
        """The whole GM/ITB stack over both lanes: the canonical span
        dumps match byte for byte."""
        ex, st = self._gm_itb_traced(True), self._gm_itb_traced(False)
        assert len(ex.spans) > 10
        assert ex.dump_json() == st.dump_json()


# ---------------------------------------------------------------------------
# randomized equivalence
# ---------------------------------------------------------------------------


def _star_traffic(traffic, express: bool):
    """Random star-topology traffic: 4 hosts on one switch."""
    topo = Topology()
    sw = topo.add_switch(n_ports=6)
    hosts = [topo.attach_host(sw, p, name=f"h{p}") for p in range(4)]
    sim = Simulator()
    fabric = Fabric(sim, topo, Timings())
    fabric.express_enabled = express
    log: list = []
    obs = LogObserver(log)
    worms = {}
    for tag, (src_i, dst_i, size, at) in enumerate(traffic):
        if src_i == dst_i:
            dst_i = (dst_i + 1) % 4
        seg = SourceRoute(src=hosts[src_i], dst=hosts[dst_i],
                          ports=(dst_i,), switch_path=(sw,))
        worms[tag] = _launch_at(sim, fabric, seg, b"w" * size, obs, tag,
                                at=float(at))
    sim.run()
    return _records(worms), log


@given(
    traffic=st.lists(
        st.tuples(
            st.integers(0, 3),       # src host
            st.integers(0, 3),       # dst host
            st.integers(0, 600),     # payload size
            st.integers(0, 4_000),   # launch time (ns)
        ),
        min_size=1, max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_random_contended_traffic_equivalent(traffic):
    """Random contended traffic through both lanes: per-worm timing
    tuples must match exactly; the observer log must match as a
    multiset (same-timestamp dispatch order is free)."""
    ex_records, ex_log = _star_traffic(traffic, True)
    st_records, st_log = _star_traffic(traffic, False)
    assert ex_records == st_records
    assert sorted(ex_log) == sorted(st_log)


class TestClaimHorizon:
    """Claim-horizon partial flights (``fabric.express_horizon``): a
    lightly-contended route flies its clean channel prefix closed-form
    and demotes only the contended suffix.  Every scenario runs three
    ways — horizon, express-without-horizon, stepped — and must produce
    identical per-worm records and observer logs; only the counters
    (``partial`` vs ``fallbacks``) distinguish the modes."""

    def _net(self, first_hop_hosts: bool = False):
        """5-switch line with mid-line crossing hosts for contention."""
        topo = Topology()
        sws = [topo.add_switch(n_ports=6) for _ in range(5)]
        for i in range(4):
            topo.connect(sws[i], 4, sws[i + 1], 5)
        src = topo.attach_host(sws[0], 0, name="src")
        dst = topo.attach_host(sws[4], 0, name="dst")
        m1 = topo.attach_host(sws[3], 1, name="m1")
        m2 = topo.attach_host(sws[4], 1, name="m2")
        e1 = topo.attach_host(sws[1], 1, name="e1")
        e2 = topo.attach_host(sws[2], 1, name="e2")
        blocker = None
        if first_hop_hosts:
            b1 = topo.attach_host(sws[0], 2, name="b1")
            b2 = topo.attach_host(sws[1], 2, name="b2")
            blocker = SourceRoute(src=b1, dst=b2, ports=(4, 2),
                                  switch_path=(sws[0], sws[1]))
        sim = Simulator()
        fabric = Fabric(sim, topo, Timings())
        main = SourceRoute(src=src, dst=dst, ports=(4, 4, 4, 4, 0),
                           switch_path=tuple(sws))
        late = SourceRoute(src=m1, dst=m2, ports=(4, 1),
                           switch_path=(sws[3], sws[4]))
        early = SourceRoute(src=e1, dst=e2, ports=(4, 1),
                            switch_path=(sws[1], sws[2]))
        if first_hop_hosts:
            return sim, fabric, sws, main, blocker
        return sim, fabric, sws, main, late, early

    @staticmethod
    def _modes():
        # (express_enabled, express_horizon)
        return {"horizon": (True, True),
                "express": (True, False),
                "stepped": (False, False)}

    def _run_modes(self, scenario):
        out = {}
        for mode, (express, horizon) in self._modes().items():
            out[mode] = scenario(express, horizon)
        records = {m: r[0] for m, r in out.items()}
        logs = {m: r[1] for m, r in out.items()}
        assert records["horizon"] == records["express"] == records["stepped"]
        assert logs["horizon"] == logs["express"] == logs["stepped"]
        return {m: r[2] for m, r in out.items()}  # fabrics

    def test_late_blocker_truncates_not_demotes(self):
        """A blocker holding the 4th trunk: the horizon lane flies the
        clean 4-channel prefix closed-form (one partial), where the
        plain express lane falls all the way back to stepped."""
        def scenario(express, horizon):
            sim, fabric, _sws, main, late, _early = self._net()
            fabric.express_enabled = express
            fabric.express_horizon = horizon
            log: list = []
            obs = LogObserver(log)
            worms = {
                "L": _launch_at(sim, fabric, late, b"z" * 400, obs, "L"),
                "M": _launch_at(sim, fabric, main, b"z" * 200, obs, "M",
                                at=10.0),
            }
            sim.run()
            return _records(worms), log, fabric

        fabrics = self._run_modes(scenario)
        horizon_stats = fabrics["horizon"].express_stats
        assert horizon_stats.partial == 1
        assert horizon_stats.hits == 2          # L full + M partial
        assert horizon_stats.fallbacks == 0
        plain_stats = fabrics["express"].express_stats
        assert plain_stats.partial == 0
        assert plain_stats.hits == 1            # only L
        assert plain_stats.fallbacks == 1       # M bailed on any conflict

    def test_down_link_mid_route_truncates_and_kills(self):
        """A dead trunk past the prefix: the partial flight flies up
        to the down channel, then the stepped suffix loses the head
        there — identical loss timing in all three modes."""
        def scenario(express, horizon):
            sim, fabric, sws, main, _late, _early = self._net()
            fabric.express_enabled = express
            fabric.express_horizon = horizon
            trunk = next(
                link for link in fabric.topo.links
                if {link.node_a, link.node_b} == {sws[2], sws[3]})
            fabric.set_link_down(trunk.link_id)
            lost: list = []
            fabric.on_worm_lost = lambda worm: lost.append(
                (worm.meta["tag"], sim.now))
            log: list = []
            worms = {"M": _launch_at(sim, fabric, main, b"d" * 256,
                                     LogObserver(log), "M")}
            sim.run()
            return _records(worms), log + lost, fabric

        fabrics = self._run_modes(scenario)
        assert fabrics["horizon"].express_stats.partial == 1
        assert fabrics["express"].express_stats.fallbacks == 1

    def test_contender_inside_prefix_interrupts_partial(self):
        """A partial flight's *virtual* prefix is interrupted by a
        contender claiming inside it: the holds materialize with exact
        stepped timestamps and both worms finish identically."""
        def scenario(express, horizon):
            sim, fabric, _sws, main, late, early = self._net()
            fabric.express_enabled = express
            fabric.express_horizon = horizon
            log: list = []
            obs = LogObserver(log)
            worms = {
                "L": _launch_at(sim, fabric, late, b"z" * 400, obs, "L"),
                "M": _launch_at(sim, fabric, main, b"z" * 300, obs, "M",
                                at=10.0),
                "E": _launch_at(sim, fabric, early, b"z" * 300, obs, "E",
                                at=20.0),
            }
            sim.run()
            return _records(worms), log, fabric

        fabrics = self._run_modes(scenario)
        assert fabrics["horizon"].express_stats.partial >= 1

    def test_short_prefix_falls_back(self):
        """A conflict on the second channel leaves a 1-channel prefix —
        below ``_MIN_EXPRESS_PREFIX``, so the horizon lane declines the
        partial flight and runs fully stepped like plain express."""
        def scenario(express, horizon):
            sim, fabric, _sws, main, blocker = self._net(
                first_hop_hosts=True)
            fabric.express_enabled = express
            fabric.express_horizon = horizon
            log: list = []
            obs = LogObserver(log)
            worms = {
                "B": _launch_at(sim, fabric, blocker, b"q" * 500, obs, "B"),
                "M": _launch_at(sim, fabric, main, b"q" * 200, obs, "M",
                                at=10.0),
            }
            sim.run()
            return _records(worms), log, fabric

        fabrics = self._run_modes(scenario)
        assert fabrics["horizon"].express_stats.partial == 0
        assert fabrics["horizon"].express_stats.fallbacks == 1

    def test_horizon_spans_identical(self):
        """Partial flights must emit the same span tree as stepped."""
        def traced(express, horizon):
            sim, fabric, _sws, main, late, _early = self._net()
            fabric.express_enabled = express
            fabric.express_horizon = horizon
            fabric.tracer = SpanTracer()
            log: list = []
            obs = LogObserver(log)
            _launch_at(sim, fabric, late, b"s" * 400, obs, "L")
            _launch_at(sim, fabric, main, b"s" * 200, obs, "M", at=10.0)
            sim.run()
            return tree_signature(fabric.tracer.spans)

        signatures = {mode: traced(*flags)
                      for mode, flags in self._modes().items()}
        assert (signatures["horizon"] == signatures["express"]
                == signatures["stepped"])
