"""Tests for topology generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.cache import topology_signature
from repro.routing.updown import UpDownRouter
from repro.topology.generators import (
    clos,
    fat_tree,
    fig1_topology,
    fig6_testbed,
    linear_switches,
    make_topology,
    mesh_2d,
    random_irregular,
    random_irregular_scaled,
)
from repro.topology.graph import PortKind, TopologyError


class TestFig6:
    def test_roles_complete(self):
        topo, roles = fig6_testbed()
        assert set(roles) == {"sw1", "sw2", "host1", "host2", "itb"}
        assert topo.is_switch(roles["sw1"])
        assert topo.is_host(roles["host1"])

    def test_cabling_matches_paper(self):
        topo, roles = fig6_testbed()
        sw1, sw2 = roles["sw1"], roles["sw2"]
        inter = [l for l in topo.links_between(sw1, sw2)]
        assert len(inter) == 3
        kinds = sorted(l.kind.value for l in inter)
        assert kinds == ["lan", "san", "san"]
        loops = topo.links_between(sw2, sw2)
        assert len(loops) == 1 and loops[0].kind is PortKind.LAN

    def test_host_attachment(self):
        topo, roles = fig6_testbed()
        assert topo.switch_of(roles["host1"]) == roles["sw1"]
        assert topo.switch_of(roles["itb"]) == roles["sw2"]
        assert topo.switch_of(roles["host2"]) == roles["sw2"]
        # NIC kinds: host1/itb are M2L (LAN), host2 is M2M (SAN).
        assert topo.host_link(roles["host1"]).kind is PortKind.LAN
        assert topo.host_link(roles["itb"]).kind is PortKind.LAN
        assert topo.host_link(roles["host2"]).kind is PortKind.SAN


class TestFig1:
    def test_shortcut_exists(self):
        topo, roles = fig1_topology()
        # The 4-6 and 6-1 cables that create the forbidden shortcut.
        assert topo.links_between(roles["sw4"], roles["sw6"])
        assert topo.links_between(roles["sw1"], roles["sw6"])
        # Switch 6 carries a host (the in-transit candidate).
        assert topo.hosts_on(roles["sw6"])

    def test_every_switch_has_a_host(self):
        topo, roles = fig1_topology()
        for s in topo.switches():
            assert topo.hosts_on(s), f"switch {s} hostless"


class TestRegular:
    def test_linear_chain(self):
        topo = linear_switches(4, hosts_per_switch=2)
        assert len(topo.switches()) == 4
        assert len(topo.hosts()) == 8
        topo.validate()

    def test_linear_needs_one_switch(self):
        with pytest.raises(TopologyError):
            linear_switches(0)

    def test_mesh_shape(self):
        topo = mesh_2d(3, 4)
        assert len(topo.switches()) == 12
        # edges: 3*3 horizontal rows... rows*(cols-1) + (rows-1)*cols
        fabric_links = [
            l for l in topo.links
            if topo.is_switch(l.node_a) and topo.is_switch(l.node_b)
        ]
        assert len(fabric_links) == 3 * 3 + 2 * 4

    def test_mesh_validates(self):
        mesh_2d(2, 2, hosts_per_switch=3).validate()


class TestRandomIrregular:
    def test_deterministic_for_seed(self):
        a = random_irregular(10, seed=3)
        b = random_irregular(10, seed=3)
        assert [l.endpoints() for l in a.links] == [
            l.endpoints() for l in b.links
        ]

    def test_different_seeds_differ(self):
        a = random_irregular(10, seed=3)
        b = random_irregular(10, seed=4)
        assert [l.endpoints() for l in a.links] != [
            l.endpoints() for l in b.links
        ]

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            random_irregular(1, seed=0)
        with pytest.raises(TopologyError):
            random_irregular(8, seed=0, switch_links=0)
        with pytest.raises(TopologyError):
            random_irregular(8, seed=0, switch_links=8, ports_per_switch=8)
        with pytest.raises(TopologyError):
            random_irregular(8, seed=0, hosts_per_switch=7, switch_links=4,
                             ports_per_switch=8)

    @given(n=st.integers(min_value=2, max_value=24),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_always_valid_and_connected(self, n, seed):
        topo = random_irregular(n, seed=seed)
        topo.validate()  # raises on disconnection
        assert len(topo.switches()) == n
        assert len(topo.hosts()) == n

    @given(n=st.integers(min_value=4, max_value=16),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_port_budget_respected(self, n, seed):
        topo = random_irregular(n, seed=seed, switch_links=4,
                                ports_per_switch=8)
        for s in topo.switches():
            fabric = len(topo.switch_neighbors(s))
            assert fabric <= 4

    def test_no_parallel_fabric_cables(self):
        topo = random_irregular(12, seed=9)
        seen = set()
        for l in topo.links:
            if topo.is_switch(l.node_a) and topo.is_switch(l.node_b):
                key = frozenset((l.node_a, l.node_b))
                assert key not in seen
                seen.add(key)


class TestClos:
    def test_structure(self):
        topo = clos(m=4, n=2, r=6)
        switches = topo.switches()
        assert len(switches) == 10
        assert len(topo.hosts()) == 12
        spines = [s for s in switches if not topo.hosts_on(s)]
        leaves = [s for s in switches if topo.hosts_on(s)]
        assert len(spines) == 4 and len(leaves) == 6
        # Every leaf reaches every spine directly; no leaf-leaf or
        # spine-spine cables.
        for leaf in leaves:
            peers = {n for (_p, n, _l) in topo.switch_neighbors(leaf)}
            assert peers == set(spines)
        for spine in spines:
            peers = {n for (_p, n, _l) in topo.switch_neighbors(spine)}
            assert peers == set(leaves)

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            clos(m=0, n=1, r=4)
        with pytest.raises(TopologyError):
            clos(m=2, n=1, r=1)
        with pytest.raises(TopologyError):
            clos(m=2, n=0, r=4)

    @given(m=st.integers(min_value=1, max_value=6),
           n=st.integers(min_value=1, max_value=3),
           r=st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_always_valid_and_routable(self, m, n, r):
        topo = clos(m=m, n=n, r=r)
        topo.validate()
        assert len(topo.switches()) == m + r
        assert len(topo.hosts()) == n * r
        # Diameter 2: every minimal path is already up*/down* legal.
        router = UpDownRouter(topo)
        hosts = topo.hosts()
        route = router.itb_route(hosts[0], hosts[-1])
        assert len(route.switch_hops()) <= 2

    def test_deterministic(self):
        a, b = clos(m=3, n=1, r=5), clos(m=3, n=1, r=5)
        assert topology_signature(a) == topology_signature(b)


class TestFatTree:
    def test_structure(self):
        k = 4
        topo = fat_tree(k=k)
        half = k // 2
        assert len(topo.switches()) == 5 * k * k // 4
        assert len(topo.hosts()) == k * half * half
        hosted = [s for s in topo.switches() if topo.hosts_on(s)]
        # Only edge switches carry hosts — one per pod half.
        assert len(hosted) == k * half
        for s in topo.switches():
            assert len(topo.switch_neighbors(s)) <= k

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            fat_tree(k=3)
        with pytest.raises(TopologyError):
            fat_tree(k=0)
        with pytest.raises(TopologyError):
            fat_tree(k=4, hosts_per_edge=3)

    @given(k=st.sampled_from([2, 4, 6]),
           hosts=st.integers(min_value=1, max_value=1))
    @settings(max_examples=10, deadline=None)
    def test_always_valid_and_routable(self, k, hosts):
        topo = fat_tree(k=k, hosts_per_edge=hosts)
        topo.validate()
        router = UpDownRouter(topo)
        hs = topo.hosts()
        route = router.itb_route(hs[0], hs[-1])
        # Edge -> agg -> core -> agg -> edge: at most 4 fabric hops.
        assert len(route.switch_hops()) <= 4

    def test_deterministic(self):
        a, b = fat_tree(k=4), fat_tree(k=4)
        assert topology_signature(a) == topology_signature(b)


class TestRandomIrregularScaled:
    @given(n=st.integers(min_value=2, max_value=64),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_always_valid_and_connected(self, n, seed):
        topo = random_irregular_scaled(n, seed=seed)
        topo.validate()
        assert len(topo.switches()) == n
        assert len(topo.hosts()) == n
        for s in topo.switches():
            assert len(topo.switch_neighbors(s)) <= 4

    def test_deterministic_for_seed(self):
        a = random_irregular_scaled(40, seed=3)
        b = random_irregular_scaled(40, seed=3)
        assert topology_signature(a) == topology_signature(b)

    def test_different_seeds_differ(self):
        a = random_irregular_scaled(40, seed=3)
        b = random_irregular_scaled(40, seed=4)
        assert topology_signature(a) != topology_signature(b)

    def test_scales_beyond_legacy_generator(self):
        # The legacy generator's quadratic rejection sampling made
        # triple-digit fabrics impractical; the scaled one must handle
        # them routinely (structure asserted, wall time via CI timeout).
        topo = random_irregular_scaled(256, seed=11)
        topo.validate()
        assert len(topo.switches()) == 256


class TestMakeTopology:
    def test_specs_round_trip(self):
        assert len(make_topology("clos:m=4,n=1,r=12").switches()) == 16
        assert len(make_topology("fattree:k=4").switches()) == 20
        assert len(make_topology("random-scaled:n=24,seed=5").switches()) == 24
        assert len(make_topology("linear:n=3").switches()) == 3
        assert make_topology("fig6").name == "fig6-testbed"

    def test_normalizes_spelling(self):
        a = make_topology("fat_tree:k=4")
        b = make_topology("fattree:k=4")
        assert topology_signature(a) == topology_signature(b)

    def test_rejects_unknown(self):
        with pytest.raises(TopologyError):
            make_topology("nope:n=4")
        with pytest.raises(TopologyError):
            make_topology("clos:bogus=1")
        with pytest.raises(TopologyError):
            make_topology("clos:m=x")
        with pytest.raises(TopologyError):
            make_topology("clos")  # missing required params
