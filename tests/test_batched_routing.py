"""Batched all-pairs route construction vs the per-pair oracles.

The scale-study tentpole rewired route construction around per-source
trees; the per-pair searches were preserved verbatim as oracles
(``*_pairwise``).  These tests pin the equivalence — same routes,
byte for byte, in the same insertion order — on every topology family
the repo ships, plus the cache and laziness behaviors that ride on
the batch path.
"""

from __future__ import annotations

import pytest

from repro.routing.cache import RouteCache, topology_signature
from repro.routing.itb import ItbRouter, round_robin_policy
from repro.routing.minimal import MinimalRouter
from repro.routing.spanning_tree import build_orientation
from repro.routing.updown import UpDownRouter
from repro.topology.generators import (
    clos,
    fat_tree,
    fig1_topology,
    fig6_testbed,
    random_irregular,
    random_irregular_scaled,
    torus_2d,
)


def _topologies():
    yield "fig6", fig6_testbed()[0]
    yield "fig1", fig1_topology()[0]
    yield "random", random_irregular(12, seed=3)
    yield "scaled", random_irregular_scaled(24, seed=7)
    yield "clos", clos(m=3, n=1, r=6)
    yield "fattree", fat_tree(k=4)
    yield "torus", torus_2d(3, 3)


TOPOLOGIES = list(_topologies())
IDS = [name for name, _ in TOPOLOGIES]


@pytest.mark.parametrize("topo", [t for _, t in TOPOLOGIES], ids=IDS)
class TestBatchedEqualsPairwise:
    def test_updown(self, topo):
        orientation = build_orientation(topo)
        batched = UpDownRouter(topo, orientation).all_pairs()
        oracle = UpDownRouter(topo, orientation).all_pairs_pairwise()
        assert list(batched) == list(oracle)  # insertion order too
        assert batched == oracle

    def test_itb(self, topo):
        orientation = build_orientation(topo)
        batched = ItbRouter(topo, orientation).all_pairs()
        oracle = ItbRouter(topo, orientation).all_pairs_pairwise()
        assert list(batched) == list(oracle)
        assert batched == oracle

    def test_minimal_routes_from(self, topo):
        router = MinimalRouter(topo)
        hosts = topo.hosts()
        src = hosts[0]
        routes = router.routes_from(src)
        for d in hosts:
            if d != src:
                assert routes[d] == router.route(src, d)


class TestBatchedStatefulPolicy:
    def test_round_robin_parity(self):
        """A stateful host policy sees the same call sequence batched
        and per-pair (plans never consult the policy; only builds do,
        once per host pair in destination order)."""
        topo = random_irregular(12, seed=3)
        orientation = build_orientation(topo)
        batched = ItbRouter(topo, orientation,
                            host_policy=round_robin_policy()).all_pairs()
        oracle = ItbRouter(topo, orientation,
                           host_policy=round_robin_policy()
                           ).all_pairs_pairwise()
        assert batched == oracle


class TestRoutesFromSubsets:
    def test_dests_subset_and_strict(self):
        topo = random_irregular(10, seed=5)
        router = UpDownRouter(topo)
        hosts = topo.hosts()
        src = hosts[0]
        subset = hosts[1:4]
        routes = router.routes_from(src, dests=subset)
        assert list(routes) == subset
        full = router.routes_from(src)
        assert {d: full[d] for d in subset} == routes

    def test_src_excluded(self):
        topo = random_irregular(8, seed=2)
        router = ItbRouter(topo)
        src = topo.hosts()[0]
        assert src not in router.routes_from(src)


class TestRouteCacheBatch:
    def test_routes_for_uses_batched_builder(self):
        topo = random_irregular(10, seed=4)
        cache = RouteCache(max_entries=4)
        _orient, pairs = cache.routes_for(topo, "itb")
        oracle = ItbRouter(topo, build_orientation(topo)
                           ).all_pairs_pairwise()
        assert pairs == oracle

    def test_routes_from_counts_batch_hits(self):
        topo = random_irregular(10, seed=4)
        cache = RouteCache(max_entries=4)
        src = topo.hosts()[0]

        # Cold: a miss, no batch hit.
        _o, routes = cache.routes_from(topo, "updown", src)
        assert cache.stats()["batch_hits"] == 0
        assert cache.stats()["misses"] == 1

        # Warm per-source entry: a batch hit.
        _o, again = cache.routes_from(topo, "updown", src)
        assert again == routes
        assert cache.stats()["batch_hits"] == 1

        # A warm full table also serves per-source slices as batch hits.
        _o, pairs = cache.routes_for(topo, "updown")
        _o, sliced = cache.routes_from(topo, "updown", src)
        assert cache.stats()["batch_hits"] == 2
        assert sliced == {d: r for (s, d), r in pairs.items() if s == src}

    def test_batch_hits_in_reset(self):
        cache = RouteCache(max_entries=2)
        topo = random_irregular(8, seed=1)
        cache.routes_from(topo, "updown", topo.hosts()[0])
        cache.routes_from(topo, "updown", topo.hosts()[0])
        assert cache.batch_hits == 1
        cache.reset_stats()
        assert cache.batch_hits == 0


class TestLazyDerivedState:
    def test_build_does_not_compute_distance_maps(self):
        """Constructing and validating a topology must stay O(V+E):
        the per-source BFS distance maps are computed on first routing
        use, not eagerly (satellite of the scale tentpole — building
        512-switch fabrics is decoupled from routing them)."""
        topo = random_irregular_scaled(32, seed=9)
        topo.validate()
        assert not any(
            isinstance(k, tuple) and k[0] == "switch_distances"
            for k in topo._derived
        )
        build_orientation(topo)  # root election walks every source
        assert any(
            isinstance(k, tuple) and k[0] == "switch_distances"
            for k in topo._derived
        )

    def test_signature_memoized(self):
        topo = random_irregular(8, seed=6)
        a = topology_signature(topo)
        assert "topology_signature" in topo._derived
        assert topology_signature(topo) == a
