"""Tests for runtime wormhole-deadlock detection.

The headline: on a ring fabric, hand-built all-clockwise routes
really deadlock under simultaneous load — and the detector names the
cycle — while up*/down* and ITB routing stay deadlock-free forever,
dynamically confirming the CDG theory.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.network.deadlock import (
    DeadlockWatchdog,
    detect_deadlock,
)
from repro.routing.routes import SourceRoute
from repro.topology.graph import PortKind, Topology


def ring_network(n: int = 4):
    topo = Topology(name=f"ring-{n}")
    sw = [topo.add_switch(n_ports=8) for _ in range(n)]
    for i in range(n):
        a, b = sw[i], sw[(i + 1) % n]
        topo.connect(a, topo.free_port(a), b, topo.free_port(b),
                     kind=PortKind.SAN)
    hosts = [topo.attach_host(s, topo.free_port(s)) for s in sw]
    topo.validate()
    cfg = NetworkConfig(
        firmware="itb", routing="updown",
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network(topo, config=cfg, roles={})
    return net, sw, hosts


def clockwise_route(topo, sw, hosts, i, hops=2):
    """Host i's packet travels `hops` switches clockwise."""
    n = len(sw)
    path = [sw[(i + k) % n] for k in range(hops + 1)]
    ports = [topo.port_toward(a, b) for a, b in zip(path, path[1:])]
    dst = hosts[(i + hops) % n]
    ports.append(topo.port_toward(path[-1], dst))
    return SourceRoute(src=hosts[i], dst=dst, ports=tuple(ports),
                       switch_path=tuple(path)), dst


class TestDetectDeadlock:
    def test_quiet_network_is_clean(self):
        net, sw, hosts = ring_network()
        report = detect_deadlock(net)
        assert not report.deadlocked
        assert "acyclic" in report.describe()

    def test_minimal_clockwise_traffic_deadlocks(self):
        """All hosts simultaneously send 2 hops clockwise with large
        packets: the classic circular wait materializes, and the
        detector names a cycle covering the ring."""
        net, sw, hosts = ring_network(4)
        topo = net.topo
        for i in range(4):
            route, dst = clockwise_route(topo, sw, hosts, i)
            net.nics[hosts[i]].firmware.host_send(
                dst=dst, payload_len=4096, gm={"last": True}, route=route)
        # Let the worms acquire their first channels and block.
        net.sim.run(until=60_000.0)
        report = detect_deadlock(net)
        assert report.deadlocked
        assert len(report.cycle) >= 2
        assert "DEADLOCK" in report.describe()

    def test_updown_traffic_never_deadlocks(self):
        """The same pressure through mapper-stamped up*/down* routes:
        the wait-for graph stays acyclic and everything delivers."""
        net, sw, hosts = ring_network(4)
        delivered = {"n": 0}
        done = net.sim.event("all")

        def on_final(tp):
            assert not tp.dropped
            delivered["n"] += 1
            if delivered["n"] == 4:
                done.succeed()

        for i in range(4):
            dst = hosts[(i + 2) % 4]
            net.nics[hosts[i]].firmware.host_send(
                dst=dst, payload_len=4096, gm={"last": True},
                on_delivered=on_final)
        watchdog = DeadlockWatchdog(net, period_ns=20_000.0)
        net.sim.run_until_event(done)
        watchdog.disarm()
        assert delivered["n"] == 4
        assert watchdog.detected is None


class TestWatchdog:
    def test_raises_on_detection(self):
        net, sw, hosts = ring_network(4)
        topo = net.topo
        for i in range(4):
            route, dst = clockwise_route(topo, sw, hosts, i)
            net.nics[hosts[i]].firmware.host_send(
                dst=dst, payload_len=4096, gm={"last": True}, route=route)
        DeadlockWatchdog(net, period_ns=30_000.0)
        with pytest.raises(RuntimeError, match="DEADLOCK"):
            net.sim.run(until=500_000.0)

    def test_record_only_mode(self):
        net, sw, hosts = ring_network(4)
        topo = net.topo
        for i in range(4):
            route, dst = clockwise_route(topo, sw, hosts, i)
            net.nics[hosts[i]].firmware.host_send(
                dst=dst, payload_len=4096, gm={"last": True}, route=route)
        watchdog = DeadlockWatchdog(net, period_ns=30_000.0,
                                    raise_on_deadlock=False)
        net.sim.run(until=200_000.0)
        assert watchdog.detected is not None
        assert watchdog.detected.deadlocked

    def test_disarm_stops_checks(self):
        net, sw, hosts = ring_network(4)
        watchdog = DeadlockWatchdog(net, period_ns=10_000.0)
        watchdog.disarm()
        net.sim.run(until=100_000.0)
        assert watchdog.reports == []
