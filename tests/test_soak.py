"""Soak tests: long mixed workloads, gated behind REPRO_SOAK=1.

The default suite keeps runs short; these push sustained mixed
traffic (data, acks, ITB forwards, flushes, retransmits) through a
medium cluster for a long simulated span and assert global sanity at
the end — a net for slow leaks (unreleased channels, buffer slots,
engine holds, arbiter imbalance).
"""

from __future__ import annotations

import os

import pytest

from repro.core.builder import build_network
from repro.core.config import NetworkConfig
from repro.core.timings import Timings
from repro.harness.workloads import drive_traffic
from repro.topology.generators import random_irregular

SOAK = os.environ.get("REPRO_SOAK", "0") == "1"

pytestmark = pytest.mark.skipif(
    not SOAK, reason="set REPRO_SOAK=1 for the long soak tests")


def soak_network(routing="itb", pool=True):
    topo = random_irregular(16, seed=3, hosts_per_switch=2)
    cfg = NetworkConfig(
        firmware="itb", routing=routing,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        recv_buffer_kind="pool" if pool else "fixed",
        pool_bytes=256 * 1024,
        reliable=False,
    )
    return build_network(topo, config=cfg)


class TestSoak:
    @pytest.mark.parametrize("routing", ["updown", "itb"])
    def test_sustained_load_leak_free(self, routing):
        net = soak_network(routing)
        drive_traffic(net, rate_bytes_per_ns_per_host=0.04,
                      packet_size=512, duration_ns=3_000_000.0,
                      warmup_ns=100_000.0)
        # Drain in-flight packets, then check every resource returned.
        net.sim.run(until=net.sim.now + 5_000_000.0)
        assert all(v == 0 for v in net.fabric.utilization_snapshot().values())
        for nic in net.nics.values():
            assert nic.recv_buffers.occupancy_bytes == 0
            assert nic.arbiter.recv_dma_active == 0
            assert nic.arbiter.send_dma_active == 0
            assert nic.arbiter.host_dma_active == 0
        stats = net.total_stats()
        assert stats["packets_received"] > 0

    def test_reliable_soak_with_faults(self):
        from repro.network.faults import FaultPlan, install_fault_plan

        topo = random_irregular(8, seed=5, hosts_per_switch=1)
        cfg = NetworkConfig(
            firmware="itb", routing="itb", reliable=True,
            timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
        )
        net = build_network(topo, config=cfg)
        plan = FaultPlan(corrupt_probability=0.05, seed=9)
        install_fault_plan(net, plan)
        hosts = sorted(net.gm_hosts)
        per_pair = 20
        received = {h: [] for h in hosts}

        def rx(h):
            gm = net.gm_hosts[h]
            while True:
                msg = yield gm.receive()
                received[h].append((msg.src, msg.tag))

        for h in hosts:
            net.sim.process(rx(h), name=f"rx{h}")
        for i, src in enumerate(hosts):
            dst = hosts[(i + 1) % len(hosts)]
            for t in range(per_pair):
                net.gm_hosts[src].send(dst, 256, tag=t)
        net.sim.run(until=2_000_000_000.0)
        for i, src in enumerate(hosts):
            dst = hosts[(i + 1) % len(hosts)]
            tags = sorted(t for s, t in received[dst] if s == src)
            assert tags == list(range(per_pair)), (
                f"{src}->{dst} incomplete after faults: {tags}")
        assert plan.corrupted > 0
