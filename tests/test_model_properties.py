"""Property-based validation of the physical models (hypothesis).

Randomized configurations checked against closed-form math: the worm
pipeline against the cut-through latency formula, and IP
fragmentation against the fragment-count/coverage arithmetic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timings import Timings
from repro.mcp.packet_format import encode_packet
from repro.network.fabric import Fabric
from repro.network.worm import Worm
from repro.routing.routes import SourceRoute
from repro.sim.engine import Simulator
from repro.topology.graph import PortKind, Topology


class _Recorder:
    def __init__(self):
        self.header_at = None
        self.complete_at = None

    def on_header(self, worm, t):
        self.header_at = t
        return None

    def on_complete(self, worm, t):
        self.complete_at = t


@given(
    n_switches=st.integers(min_value=1, max_value=6),
    payload_len=st.integers(min_value=0, max_value=4096),
    lengths=st.lists(st.floats(min_value=0.5, max_value=50.0,
                               allow_nan=False), min_size=7, max_size=7),
    kinds_bits=st.integers(min_value=0, max_value=127),
)
@settings(max_examples=40, deadline=None)
def test_worm_latency_matches_closed_form(n_switches, payload_len,
                                          lengths, kinds_bits):
    """Any chain (random per-cable lengths and kinds, random payload):
    simulated delivery time equals the cut-through formula exactly."""
    kinds = [PortKind.LAN if (kinds_bits >> i) & 1 else PortKind.SAN
             for i in range(n_switches + 1)]
    cable_lengths = lengths[:n_switches + 1]

    topo = Topology()
    sws = [topo.add_switch(n_ports=4) for _ in range(n_switches)]
    src = topo.add_host(name="src")
    dst = topo.add_host(name="dst")
    topo.connect(sws[0], 0, src, 0, kind=kinds[0],
                 length_m=cable_lengths[0])
    for i in range(n_switches - 1):
        topo.connect(sws[i], 1, sws[i + 1], 0, kind=kinds[i + 1],
                     length_m=cable_lengths[i + 1])
    topo.connect(sws[-1], 1, dst, 0, kind=kinds[-1],
                 length_m=cable_lengths[-1])

    sim = Simulator()
    t = Timings()
    fabric = Fabric(sim, topo, t)
    seg = SourceRoute(src=src, dst=dst, ports=tuple([1] * n_switches),
                      switch_path=tuple(sws))
    image = encode_packet(seg, payload_len)
    rec = _Recorder()
    Worm(sim, fabric, seg, image, observer=rec).launch()
    sim.run()

    head = t.link_byte_ns + t.propagation(cable_lengths[0])
    for i in range(n_switches):
        head += t.fall_through(kinds[i], kinds[i + 1]) \
            + t.propagation(cable_lengths[i + 1])
    wire_at_dst = len(image.data) - n_switches
    assert rec.complete_at == pytest.approx(
        head + t.wire_time(wire_at_dst))


@given(size=st.integers(min_value=0, max_value=40_000))
@settings(max_examples=30, deadline=None)
def test_ip_fragmentation_arithmetic(size):
    """Any datagram size: the endpoint sends exactly
    ceil(size / payload)-ish fragments (8-byte alignment for non-final
    ones), every fragment is within the GM MTU, and the receiver
    reassembles the full length."""
    from repro.core.builder import build_network
    from repro.core.config import NetworkConfig
    from repro.gm.ip import FRAGMENT_PAYLOAD, IpEndpoint

    cfg = NetworkConfig(
        firmware="itb", routing="updown", reliable=False,
        timings=Timings().with_overrides(host_jitter_sigma_ns=0.0),
    )
    net = build_network("fig6", config=cfg)
    a = IpEndpoint(net.gm("host1"))
    b = IpEndpoint(net.gm("host2"))
    got = []
    b.on_datagram(got.append)
    a.send(net.roles["host2"], size)
    net.sim.run(until=500_000_000)

    assert len(got) == 1
    assert got[0].length == size
    # Fragment-count bound: alignment can only add fragments, never
    # remove them, and each fragment moves at least FRAG_UNIT bytes
    # (except a sole/final short one).
    min_frags = max(1, -(-size // FRAGMENT_PAYLOAD))
    assert a.stats.fragments_sent >= min_frags
    assert a.stats.fragments_sent <= min_frags + size // FRAGMENT_PAYLOAD + 1
    assert b.stats.fragments_received == a.stats.fragments_sent
    assert b.partial_reassemblies == 0
