"""Documentation quality gates.

Every public module, class, and function in the library must carry a
docstring — enforced here so the documentation deliverable cannot
silently rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


class TestModuleDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} lacks a module docstring")


class TestPublicApiDocstrings:
    def _public_members(self):
        for module_name in ALL_MODULES:
            module = importlib.import_module(module_name)
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                obj = getattr(module, name, None)
                if obj is None:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    yield f"{module_name}.{name}", obj

    def test_every_exported_item_documented(self):
        undocumented = [
            qualname
            for qualname, obj in self._public_members()
            if not (obj.__doc__ and obj.__doc__.strip())
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_document_public_methods(self):
        missing = []
        for qualname, obj in self._public_members():
            if not inspect.isclass(obj):
                continue
            for name, member in inspect.getmembers(obj):
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        and member.__qualname__.startswith(obj.__name__)):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    missing.append(f"{qualname}.{name}")
        # Simple property-like accessors named like attributes get a
        # pass only if trivially short; everything else must be
        # documented.  Keep the bar strict: nothing may be missing.
        assert not missing, f"undocumented public methods: {missing}"


class TestProjectDocs:
    def test_top_level_docs_exist(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = root / name
            assert path.exists(), f"{name} missing"
            assert len(path.read_text()) > 1000, f"{name} is a stub"

    def test_experiments_covers_every_figure(self):
        from pathlib import Path

        text = (Path(__file__).resolve().parent.parent
                / "EXPERIMENTS.md").read_text()
        for exp in ("EXP-F7", "EXP-F8", "EXP-F1", "EXP-M1", "EXP-M1b",
                    "EXP-M1c", "EXP-M2", "EXP-A1", "EXP-A2", "EXP-A3",
                    "EXP-A4", "EXP-A5", "EXP-A6", "EXP-A7"):
            assert exp in text, f"{exp} undocumented in EXPERIMENTS.md"

    def test_design_experiment_index_covers_benches(self):
        """Every bench file is referenced from DESIGN.md's index."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        design = (root / "DESIGN.md").read_text()
        for bench in sorted((root / "benchmarks").glob("test_bench_*.py")):
            if bench.name in ("test_bench_engine.py",
                              "test_bench_tracing.py",
                              "test_bench_routing.py",
                              "test_bench_selection.py"):
                continue  # performance guard, not a paper experiment
            assert bench.name in design, (
                f"{bench.name} missing from DESIGN.md's experiment index")
