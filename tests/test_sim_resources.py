"""Unit tests for Resource and Store."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Timeout
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_immediate_grant_when_free(self, sim):
        res = Resource(sim, capacity=1)
        req = res.request(owner="a")
        assert req.triggered
        assert res.in_use == 1
        assert not res.free

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        granted = []

        def worker(name, hold):
            yield res.request(owner=name)
            granted.append((sim.now, name))
            yield Timeout(hold)
            res.release(owner=name)

        sim.process(worker("a", 10))
        sim.process(worker("b", 10))
        sim.process(worker("c", 10))
        sim.run()
        assert [g[1] for g in granted] == ["a", "b", "c"]
        assert [g[0] for g in granted] == [0.0, 10.0, 20.0]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        granted = []

        def worker(name):
            yield res.request(owner=name)
            granted.append((sim.now, name))
            yield Timeout(10)
            res.release(owner=name)

        for n in "abc":
            sim.process(worker(n))
        sim.run()
        times = dict((n, t) for t, n in granted)
        assert times["a"] == 0.0 and times["b"] == 0.0
        assert times["c"] == 10.0

    def test_release_without_hold_is_error(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release(owner="ghost")

    def test_try_acquire(self, sim):
        res = Resource(sim, capacity=1)
        assert res.try_acquire("a")
        assert not res.try_acquire("b")
        res.release("a")
        assert res.try_acquire("b")

    def test_try_acquire_respects_waiters(self, sim):
        res = Resource(sim, capacity=1)
        res.try_acquire("a")
        res.request(owner="waiting")
        res.release("a")
        # "waiting" got the grant; try_acquire must not jump the queue.
        assert res.holders() == ("waiting",)

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)
        res.try_acquire("a")
        res.request(owner="b")
        assert res.queue_length == 1
        assert res.cancel("b")
        assert res.queue_length == 0
        assert not res.cancel("b")

    def test_queue_length_tracking(self, sim):
        res = Resource(sim, capacity=1)
        res.try_acquire("x")
        res.request(owner="y")
        res.request(owner="z")
        assert res.queue_length == 2


class TestStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        ev = store.get()
        assert ev.triggered and ev.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        seen = []

        def getter():
            item = yield store.get()
            seen.append((sim.now, item))

        sim.process(getter())
        sim.schedule(15, lambda: store.put("late"))
        sim.run()
        assert seen == [(15.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        out = [store.get().value for _ in range(5)]
        assert out == list(range(5))

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        store.put("first")
        ev = store.put("second")
        assert not ev.triggered
        assert store.full
        got = store.get()
        assert got.value == "first"
        assert ev.triggered  # second admitted after space freed
        assert store.get().value == "second"

    def test_try_put_try_get(self, sim):
        store = Store(sim, capacity=1)
        assert store.try_put(1)
        assert not store.try_put(2)
        ok, item = store.try_get()
        assert ok and item == 1
        ok, item = store.try_get()
        assert not ok and item is None

    def test_put_hands_directly_to_waiting_getter(self, sim):
        store = Store(sim, capacity=1)
        seen = []

        def getter():
            item = yield store.get()
            seen.append(item)

        sim.process(getter())
        sim.run()
        store.put("direct")
        sim.run()
        assert seen == ["direct"]
        assert len(store) == 0

    def test_peek(self, sim):
        store = Store(sim)
        with pytest.raises(SimulationError):
            store.peek()
        store.put("x")
        assert store.peek() == "x"
        assert len(store) == 1
